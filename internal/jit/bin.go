package jit

import (
	"encoding/binary"
	"fmt"
	"math"

	"rawdb/internal/catalog"
	"rawdb/internal/exec"
	"rawdb/internal/storage/binfile"
	"rawdb/internal/synopsis"
	"rawdb/internal/vector"
)

// BinScan is a JIT access path over the fixed-width binary format. The
// generator computes every field's byte offset and the row stride once and
// folds them into per-column reader closures; execution is column-at-a-time
// strided decoding with no per-field position arithmetic beyond one addition
// and no type dispatch. This is the paper's "the location of the 3rd column
// of row 15 can be computed as 15*tupleSize + 2*dataSize ... directly
// included in the generated code". With pushdown (NewBinScanPush) predicate
// columns decode first, the conjunction is evaluated vectorized, remaining
// columns decode only qualifying rows, and zone maps exclude whole batch
// ranges before any decoding.
type BinScan struct {
	schema    vector.Schema
	batchSize int
	nrows     int64
	readers   []func(rowStart, rowEnd int64, sel []int32, out *vector.Vector)
	emitRID   bool
	ridSlot   int

	predReaders []int
	restReaders []int
	predEval    []slotPred
	selBuf      []int32
	skip        func(start, end int64) bool
	// syn, when set, advances by each batch's row count after all observed
	// columns decoded: zone boundaries then align to batches, which the
	// synopsis representation permits (blocks are variable row ranges). With
	// predicates pushed, only predicate columns (decoded dense) observe.
	syn *synopsis.Builder

	rowsPruned    int64
	blocksSkipped int64

	// Row range [rngStart, rngEnd) restricts the scan to a morsel of the
	// file; the zero rngEnd means "to the last row".
	rngStart, rngEnd int64

	row int64
	out *vector.Batch
}

// SetRowRange restricts the scan to rows [start, end), the morsel form used
// by parallel plans (fixed-stride arithmetic makes any row range addressable
// directly). The emitted row ids stay absolute.
func (s *BinScan) SetRowRange(start, end int64) error {
	if start < 0 || end < start || end > s.nrows {
		return fmt.Errorf("jit: row range [%d,%d) outside 0..%d", start, end, s.nrows)
	}
	s.rngStart, s.rngEnd = start, end
	return nil
}

// PushStats reports how many rows pushed-down predicates eliminated and how
// many batch ranges zone-map skip tests excluded inside this scan.
func (s *BinScan) PushStats() (rowsPruned, blocksSkipped int64) {
	return s.rowsPruned, s.blocksSkipped
}

// NewBinScan generates a binary access path materialising columns need.
func NewBinScan(r *binfile.Reader, t *catalog.Table, need []int, emitRID bool, batchSize int) (*BinScan, error) {
	return NewBinScanPush(r, t, need, emitRID, batchSize, Pushdown{})
}

// NewBinScanPush generates a binary access path with pushdown (see BinScan).
func NewBinScanPush(r *binfile.Reader, t *catalog.Table, need []int, emitRID bool,
	batchSize int, opts Pushdown) (*BinScan, error) {
	if t.Format != catalog.Binary {
		return nil, fmt.Errorf("jit: bin scan got format %s", t.Format)
	}
	if err := validatePreds(t, need, opts.Preds); err != nil {
		return nil, err
	}
	if batchSize <= 0 {
		batchSize = vector.DefaultBatchSize
	}
	schema, err := scanSchema(t, need, emitRID)
	if err != nil {
		return nil, err
	}
	s := &BinScan{
		schema:    schema,
		batchSize: batchSize,
		nrows:     r.NRows(),
		emitRID:   emitRID,
		ridSlot:   len(need),
		skip:      opts.Skip,
		syn:       opts.Syn,
	}
	s.out = vector.NewBatch(schema.Types(), batchSize)
	payload := r.Payload()
	rowSize := r.RowSize()
	types := r.Types()
	for i, c := range need {
		if c < 0 || c >= len(types) {
			return nil, fmt.Errorf("jit: column index %d out of range", c)
		}
		// Offset and synopsis accumulator resolved at generation time:
		// constants in the closure.
		off := r.FieldOffset(c)
		acc := opts.Syn.Acc(c)
		switch types[c] {
		case vector.Int64:
			s.readers = append(s.readers, func(rowStart, rowEnd int64, sel []int32, out *vector.Vector) {
				if sel != nil {
					base := out.Extend(int(rowEnd - rowStart))
					start := int(rowStart) * rowSize
					for _, si := range sel {
						p := start + int(si)*rowSize + off
						out.Int64s[base+int(si)] = int64(binary.LittleEndian.Uint64(payload[p : p+8]))
					}
					return
				}
				p := int(rowStart)*rowSize + off
				for i := rowStart; i < rowEnd; i++ {
					v := int64(binary.LittleEndian.Uint64(payload[p : p+8]))
					if acc != nil {
						acc.ObserveInt64(v)
					}
					out.Int64s = append(out.Int64s, v)
					p += rowSize
				}
			})
		case vector.Float64:
			s.readers = append(s.readers, func(rowStart, rowEnd int64, sel []int32, out *vector.Vector) {
				if sel != nil {
					base := out.Extend(int(rowEnd - rowStart))
					start := int(rowStart) * rowSize
					for _, si := range sel {
						p := start + int(si)*rowSize + off
						out.Float64s[base+int(si)] = math.Float64frombits(binary.LittleEndian.Uint64(payload[p : p+8]))
					}
					return
				}
				p := int(rowStart)*rowSize + off
				for i := rowStart; i < rowEnd; i++ {
					v := math.Float64frombits(binary.LittleEndian.Uint64(payload[p : p+8]))
					if acc != nil {
						acc.ObserveFloat64(v)
					}
					out.Float64s = append(out.Float64s, v)
					p += rowSize
				}
			})
		default:
			return nil, fmt.Errorf("jit: unsupported binary column type %s", types[c])
		}
		if ps := predsFor(opts.Preds, c); len(ps) > 0 {
			s.predReaders = append(s.predReaders, i)
			for _, p := range ps {
				s.predEval = append(s.predEval, slotPred{slot: i, p: p})
			}
		} else {
			s.restReaders = append(s.restReaders, i)
		}
	}
	return s, nil
}

// Schema implements exec.Operator.
func (s *BinScan) Schema() vector.Schema { return s.schema }

// Open implements exec.Operator.
func (s *BinScan) Open() error {
	s.row = s.rngStart
	return nil
}

// Next implements exec.Operator.
func (s *BinScan) Next() (*vector.Batch, error) {
	limit := s.nrows
	if s.rngEnd > 0 {
		limit = s.rngEnd
	}
	for {
		if s.row >= limit {
			return nil, nil
		}
		end := s.row + int64(s.batchSize)
		if end > limit {
			end = limit
		}
		if s.skip != nil && s.skip(s.row, end) {
			s.blocksSkipped++
			s.rowsPruned += end - s.row
			s.row = end
			continue
		}
		s.out.Reset()
		m := int(end - s.row)
		var sel []int32
		if len(s.predEval) > 0 {
			for _, ri := range s.predReaders {
				s.readers[ri](s.row, end, nil, s.out.Cols[ri])
			}
			var all bool
			sel, all = evalSlotPreds(s.predEval, s.out, m, s.selBuf)
			s.selBuf = sel[:0]
			if all {
				sel = nil
			} else if len(sel) == 0 {
				s.rowsPruned += int64(m)
				if s.syn != nil {
					s.syn.Advance(end - s.row)
				}
				s.row = end
				continue
			} else {
				s.rowsPruned += int64(m - len(sel))
			}
			for _, ri := range s.restReaders {
				s.readers[ri](s.row, end, sel, s.out.Cols[ri])
			}
		} else {
			for i, r := range s.readers {
				r(s.row, end, nil, s.out.Cols[i])
			}
		}
		if s.syn != nil {
			s.syn.Advance(end - s.row)
		}
		if s.emitRID {
			rid := s.out.Cols[s.ridSlot]
			for i := s.row; i < end; i++ {
				rid.AppendInt64(i)
			}
		}
		s.out.Sel = sel
		s.row = end
		return s.out, nil
	}
}

// Close implements exec.Operator.
func (s *BinScan) Close() error { return nil }

var _ exec.Operator = (*BinScan)(nil)
