package jit

import (
	"encoding/binary"
	"fmt"
	"math"

	"rawdb/internal/catalog"
	"rawdb/internal/exec"
	"rawdb/internal/storage/binfile"
	"rawdb/internal/vector"
)

// BinScan is a JIT access path over the fixed-width binary format. The
// generator computes every field's byte offset and the row stride once and
// folds them into per-column reader closures; execution is column-at-a-time
// strided decoding with no per-field position arithmetic beyond one addition
// and no type dispatch. This is the paper's "the location of the 3rd column
// of row 15 can be computed as 15*tupleSize + 2*dataSize ... directly
// included in the generated code".
type BinScan struct {
	schema    vector.Schema
	batchSize int
	nrows     int64
	readers   []func(rowStart, rowEnd int64, out *vector.Vector)
	emitRID   bool
	ridSlot   int

	// Row range [rngStart, rngEnd) restricts the scan to a morsel of the
	// file; the zero rngEnd means "to the last row".
	rngStart, rngEnd int64

	row int64
	out *vector.Batch
}

// SetRowRange restricts the scan to rows [start, end), the morsel form used
// by parallel plans (fixed-stride arithmetic makes any row range addressable
// directly). The emitted row ids stay absolute.
func (s *BinScan) SetRowRange(start, end int64) error {
	if start < 0 || end < start || end > s.nrows {
		return fmt.Errorf("jit: row range [%d,%d) outside 0..%d", start, end, s.nrows)
	}
	s.rngStart, s.rngEnd = start, end
	return nil
}

// NewBinScan generates a binary access path materialising columns need.
func NewBinScan(r *binfile.Reader, t *catalog.Table, need []int, emitRID bool, batchSize int) (*BinScan, error) {
	if t.Format != catalog.Binary {
		return nil, fmt.Errorf("jit: bin scan got format %s", t.Format)
	}
	if batchSize <= 0 {
		batchSize = vector.DefaultBatchSize
	}
	schema, err := scanSchema(t, need, emitRID)
	if err != nil {
		return nil, err
	}
	s := &BinScan{
		schema:    schema,
		batchSize: batchSize,
		nrows:     r.NRows(),
		emitRID:   emitRID,
		ridSlot:   len(need),
	}
	s.out = vector.NewBatch(schema.Types(), batchSize)
	payload := r.Payload()
	rowSize := r.RowSize()
	types := r.Types()
	for _, c := range need {
		if c < 0 || c >= len(types) {
			return nil, fmt.Errorf("jit: column index %d out of range", c)
		}
		// Offset resolved at generation time: a constant in the closure.
		off := r.FieldOffset(c)
		switch types[c] {
		case vector.Int64:
			s.readers = append(s.readers, func(rowStart, rowEnd int64, out *vector.Vector) {
				p := int(rowStart)*rowSize + off
				for i := rowStart; i < rowEnd; i++ {
					out.Int64s = append(out.Int64s, int64(binary.LittleEndian.Uint64(payload[p:p+8])))
					p += rowSize
				}
			})
		case vector.Float64:
			s.readers = append(s.readers, func(rowStart, rowEnd int64, out *vector.Vector) {
				p := int(rowStart)*rowSize + off
				for i := rowStart; i < rowEnd; i++ {
					out.Float64s = append(out.Float64s, math.Float64frombits(binary.LittleEndian.Uint64(payload[p:p+8])))
					p += rowSize
				}
			})
		default:
			return nil, fmt.Errorf("jit: unsupported binary column type %s", types[c])
		}
	}
	return s, nil
}

// Schema implements exec.Operator.
func (s *BinScan) Schema() vector.Schema { return s.schema }

// Open implements exec.Operator.
func (s *BinScan) Open() error {
	s.row = s.rngStart
	return nil
}

// Next implements exec.Operator.
func (s *BinScan) Next() (*vector.Batch, error) {
	limit := s.nrows
	if s.rngEnd > 0 {
		limit = s.rngEnd
	}
	if s.row >= limit {
		return nil, nil
	}
	s.out.Reset()
	end := s.row + int64(s.batchSize)
	if end > limit {
		end = limit
	}
	for i, r := range s.readers {
		r(s.row, end, s.out.Cols[i])
	}
	if s.emitRID {
		rid := s.out.Cols[s.ridSlot]
		for i := s.row; i < end; i++ {
			rid.AppendInt64(i)
		}
	}
	s.row = end
	return s.out, nil
}

// Close implements exec.Operator.
func (s *BinScan) Close() error { return nil }

var _ exec.Operator = (*BinScan)(nil)
