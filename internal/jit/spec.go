// Package jit implements Just-In-Time access paths, the paper's core
// contribution: scan operators generated per file format, per schema and per
// query, eliminating the interpretation overhead of general-purpose scans.
//
// Substitution note (documented in DESIGN.md): the paper generates C++
// through macros, compiles it on the fly and dlopens the result. Go has no
// supported runtime machine-code generation, so "code generation" here means
// closure specialisation: at construction time each access path is assembled
// as a flat chain of monomorphic step closures with all decisions — column
// unrolling, conversion function choice, positional-map actions, binary
// offsets — resolved before the first row is read. The inner loops contain
// no type switches and no catalog lookups, which is the same property the
// paper's generated code achieves. For fidelity and inspectability, every
// spec can also emit the Go source a real generator would compile
// (Spec.Source), and the template cache can charge a simulated one-time
// compilation latency to the first query that uses a new access path.
package jit

import (
	"fmt"
	"strings"

	"rawdb/internal/catalog"
	"rawdb/internal/exec"
	"rawdb/internal/vector"
)

// Mode distinguishes the access-path families a spec can describe.
type Mode uint8

// Access path modes.
const (
	// Sequential parses the file front to back (first query over a file).
	Sequential Mode = iota
	// ViaMap navigates with a positional map (later queries, CSV).
	ViaMap
	// Direct computes positions from the schema (binary) or uses id-based
	// library access (root).
	Direct
	// Late reads one or more columns for a set of surviving row ids — the
	// column-shred access path.
	Late
)

// String returns the mode name.
func (m Mode) String() string {
	switch m {
	case Sequential:
		return "seq"
	case ViaMap:
		return "viamap"
	case Direct:
		return "direct"
	case Late:
		return "late"
	default:
		return "?"
	}
}

// Spec is the abstract description of one access path, the unit the template
// cache is keyed by. It captures everything the "code generator" needs: the
// format, the schema, which fields are read and how.
type Spec struct {
	Format catalog.Format
	Table  string
	Mode   Mode
	// Types are the declared column types of the table.
	Types []vector.Type
	// Need lists the columns the operator materialises, in output order.
	Need []int
	// Paths lists the dotted field paths of the Need columns (JSON only;
	// the path set is part of the generated code's identity there).
	Paths []string
	// PMRead lists the tracked columns of the positional map / structural
	// index consulted (ViaMap and Late over CSV and JSON).
	PMRead []int
	// PMBuild lists the tracked columns recorded while scanning
	// (Sequential over CSV and JSON).
	PMBuild []int
	// Preds lists the conjunctive predicates pushed down into the generated
	// access path (Col = schema column index). Inlined predicate checks are
	// part of the generated code's identity, exactly like conversion
	// functions, so they participate in the template-cache key.
	Preds []exec.Pred
	// EmitRID indicates the hidden row-id column is appended.
	EmitRID bool
}

// Key returns a canonical string identifying the spec, used by the template
// cache exactly like the paper's cache of generated libraries.
func (sp Spec) Key() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s|%s|%s|t=", sp.Format, sp.Table, sp.Mode)
	for _, t := range sp.Types {
		fmt.Fprintf(&b, "%d,", uint8(t))
	}
	fmt.Fprintf(&b, "|n=%v|pr=%v|pb=%v|rid=%v", sp.Need, sp.PMRead, sp.PMBuild, sp.EmitRID)
	if len(sp.Paths) > 0 {
		fmt.Fprintf(&b, "|paths=%v", sp.Paths)
	}
	if len(sp.Preds) > 0 {
		fmt.Fprintf(&b, "|w=%v", sp.Preds)
	}
	return b.String()
}
