package jit

import (
	"container/list"
	"sync"
	"time"
)

// CacheEntry records one generated access path: its emitted source and usage
// statistics.
type CacheEntry struct {
	Key    string
	Source string
	// Compiles counts how many times this path was (re)generated — always 1
	// unless the cache was reset or the entry was evicted and rebuilt.
	Compiles int
	// Hits counts reuses after the initial compilation.
	Hits int
}

// DefaultCapacityBytes bounds the template cache. Generated sources are a
// few KiB each, so the default holds thousands of distinct access paths —
// effectively unbounded for normal workloads while keeping the accounting in
// bytes (an entry-counted limit would say nothing about memory).
const DefaultCapacityBytes = 8 << 20

// entryOverheadBytes approximates the fixed cost of one entry beyond its key
// and source strings (map bucket, list element, struct header).
const entryOverheadBytes = 96

func entryBytes(e *CacheEntry) int64 {
	return int64(len(e.Key)) + int64(len(e.Source)) + entryOverheadBytes
}

// Cache is the template cache of generated access paths. The paper keeps
// compiled libraries keyed by access-path description and reuses them when
// the same query shape recurs; here the cached artifact is the emitted
// source plus the knowledge that construction cost was already paid. Entries
// are byte-accounted and evicted least-recently-used beyond a capacity; an
// evicted template is simply regenerated (and re-charged) on next use. A
// configurable CompileDelay models the paper's ~2 s first-query compilation
// overhead (defaults to zero so tests and benchmarks measure pure execution;
// the experiment harness sets it when reproducing Figure 1a).
type Cache struct {
	mu           sync.Mutex
	entries      map[string]*list.Element // of *CacheEntry
	lru          *list.List               // front = most recent
	size         int64
	capacity     int64
	compileDelay time.Duration
	sleep        func(time.Duration) // test seam; defaults to time.Sleep
}

// NewCache returns an empty template cache with the default byte capacity.
func NewCache() *Cache {
	return &Cache{
		entries:  make(map[string]*list.Element),
		lru:      list.New(),
		capacity: DefaultCapacityBytes,
		sleep:    time.Sleep,
	}
}

// SetCapacityBytes changes the cache's byte budget (<= 0 restores the
// default) and evicts immediately if the cache is over it.
func (c *Cache) SetCapacityBytes(n int64) {
	if n <= 0 {
		n = DefaultCapacityBytes
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.capacity = n
	c.evict()
}

// SetCompileDelay sets the simulated per-compilation latency charged on
// cache misses.
func (c *Cache) SetCompileDelay(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.compileDelay = d
}

// Ensure looks the spec up, "compiling" (emitting source and charging the
// simulated latency) on a miss. It returns the entry and whether it was
// already cached.
func (c *Cache) Ensure(sp Spec) (*CacheEntry, bool) {
	key := sp.Key()
	c.mu.Lock()
	if el, ok := c.entries[key]; ok {
		e := el.Value.(*CacheEntry)
		e.Hits++
		c.lru.MoveToFront(el)
		c.mu.Unlock()
		return e, true
	}
	delay := c.compileDelay
	e := &CacheEntry{Key: key, Source: sp.Source(), Compiles: 1}
	c.entries[key] = c.lru.PushFront(e)
	c.size += entryBytes(e)
	c.evict()
	c.mu.Unlock()
	if delay > 0 {
		c.sleep(delay)
	}
	return e, false
}

// evict drops least-recently-used entries until the byte budget is met,
// always retaining the most recent entry (evicting the template a query is
// about to use would only force an immediate recompilation).
func (c *Cache) evict() {
	for c.size > c.capacity && c.lru.Len() > 1 {
		el := c.lru.Back()
		e := el.Value.(*CacheEntry)
		c.lru.Remove(el)
		delete(c.entries, e.Key)
		c.size -= entryBytes(e)
	}
}

// Len returns the number of cached access paths.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lru.Len()
}

// SizeBytes returns the bytes accounted to cached entries.
func (c *Cache) SizeBytes() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.size
}

// Reset drops all cached templates.
func (c *Cache) Reset() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.entries = make(map[string]*list.Element)
	c.lru.Init()
	c.size = 0
}

// Entries returns a snapshot of the cached entries, most recently used
// first.
func (c *Cache) Entries() []*CacheEntry {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]*CacheEntry, 0, c.lru.Len())
	for el := c.lru.Front(); el != nil; el = el.Next() {
		cp := *el.Value.(*CacheEntry)
		out = append(out, &cp)
	}
	return out
}
