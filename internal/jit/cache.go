package jit

import (
	"sync"
	"time"
)

// CacheEntry records one generated access path: its emitted source and usage
// statistics.
type CacheEntry struct {
	Key    string
	Source string
	// Compiles counts how many times this path was (re)generated — always 1
	// unless the cache was reset.
	Compiles int
	// Hits counts reuses after the initial compilation.
	Hits int
}

// Cache is the template cache of generated access paths. The paper keeps
// compiled libraries keyed by access-path description and reuses them when
// the same query shape recurs; here the cached artifact is the emitted
// source plus the knowledge that construction cost was already paid. A
// configurable CompileDelay models the paper's ~2 s first-query compilation
// overhead (defaults to zero so tests and benchmarks measure pure execution;
// the experiment harness sets it when reproducing Figure 1a).
type Cache struct {
	mu           sync.Mutex
	entries      map[string]*CacheEntry
	compileDelay time.Duration
	sleep        func(time.Duration) // test seam; defaults to time.Sleep
}

// NewCache returns an empty template cache.
func NewCache() *Cache {
	return &Cache{entries: make(map[string]*CacheEntry), sleep: time.Sleep}
}

// SetCompileDelay sets the simulated per-compilation latency charged on
// cache misses.
func (c *Cache) SetCompileDelay(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.compileDelay = d
}

// Ensure looks the spec up, "compiling" (emitting source and charging the
// simulated latency) on a miss. It returns the entry and whether it was
// already cached.
func (c *Cache) Ensure(sp Spec) (*CacheEntry, bool) {
	key := sp.Key()
	c.mu.Lock()
	if e, ok := c.entries[key]; ok {
		e.Hits++
		c.mu.Unlock()
		return e, true
	}
	delay := c.compileDelay
	e := &CacheEntry{Key: key, Source: sp.Source(), Compiles: 1}
	c.entries[key] = e
	c.mu.Unlock()
	if delay > 0 {
		c.sleep(delay)
	}
	return e, false
}

// Len returns the number of cached access paths.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// Reset drops all cached templates.
func (c *Cache) Reset() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.entries = make(map[string]*CacheEntry)
}

// Entries returns a snapshot of the cached entries.
func (c *Cache) Entries() []*CacheEntry {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]*CacheEntry, 0, len(c.entries))
	for _, e := range c.entries {
		cp := *e
		out = append(out, &cp)
	}
	return out
}
