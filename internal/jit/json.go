package jit

import (
	"bytes"
	"fmt"

	"rawdb/internal/bytesconv"
	"rawdb/internal/catalog"
	"rawdb/internal/exec"
	"rawdb/internal/jsonidx"
	"rawdb/internal/storage/jsonfile"
	"rawdb/internal/synopsis"
	"rawdb/internal/vector"
)

// The JSON access paths follow the same generation discipline as the CSV
// ones: everything a general-purpose scan would decide per field — which
// dotted paths matter, where they nest, which conversion applies — is
// resolved at construction into a matcher tree of raw key bytes and
// monomorphic leaf actions. The per-row walk compares member keys against
// the tree and skips everything else; there are no map lookups, no
// reflection and no allocation per field.

// jsonTarget is the compiled action for one matched object member.
type jsonTarget struct {
	slot int // output vector slot, -1 when the value is not materialised
	rec  int // structural-index recording slot, -1 when not recorded
	typ  vector.Type
	sub  *jsonMatcher // non-nil: descend into a nested object
	// Pushed-down predicate checks and synopsis accumulator, resolved at
	// generation time like the conversion functions (nil when absent).
	testI func(int64) bool
	testF func(float64) bool
	acc   *synopsis.Acc
}

// jsonMatcher matches the members of one (possibly nested) object level.
type jsonMatcher struct {
	keys [][]byte
	tgts []*jsonTarget
}

func (m *jsonMatcher) target(segs []string) *jsonTarget {
	cur := m
	for d := 0; ; d++ {
		key := []byte(segs[d])
		var tgt *jsonTarget
		for i, k := range cur.keys {
			if bytes.Equal(k, key) {
				tgt = cur.tgts[i]
				break
			}
		}
		if tgt == nil {
			tgt = &jsonTarget{slot: -1, rec: -1}
			cur.keys = append(cur.keys, key)
			cur.tgts = append(cur.tgts, tgt)
		}
		if d == len(segs)-1 {
			return tgt
		}
		if tgt.sub == nil {
			tgt.sub = &jsonMatcher{}
		}
		cur = tgt.sub
	}
}

// jsonEntry is one path the matcher must act on.
type jsonEntry struct {
	path string
	slot int
	rec  int
	typ  vector.Type
}

// compileJSONMatcher builds the matcher tree for a set of dotted paths.
func compileJSONMatcher(entries []jsonEntry) (*jsonMatcher, int, error) {
	root := &jsonMatcher{}
	nleaves := 0
	for _, e := range entries {
		segs := jsonfile.SplitPath(e.path)
		for _, s := range segs {
			if s == "" {
				return nil, 0, fmt.Errorf("jit: json path %q has an empty segment", e.path)
			}
		}
		tgt := root.target(segs)
		if tgt.sub != nil {
			return nil, 0, fmt.Errorf("jit: json path %q conflicts with a longer declared path", e.path)
		}
		if tgt.slot >= 0 || tgt.rec >= 0 {
			return nil, 0, fmt.Errorf("jit: duplicate json path %q", e.path)
		}
		tgt.slot, tgt.rec, tgt.typ = e.slot, e.rec, e.typ
		nleaves++
	}
	return root, nleaves, nil
}

// jsonColReader reads one column's values for rows [rowStart, rowEnd), the
// column-at-a-time body of a structural-index (ViaMap) JSON scan. A non-nil
// sel restricts recorded-offset readers to the selected batch rows; readers
// that record adaptively ignore sel (the structural index must cover every
// row) and always run dense.
type jsonColReader func(rowStart, rowEnd int64, sel []int32, out *vector.Vector) error

// JSONScan is a JIT access path over a JSONL file. Construct it with
// NewJSONSequentialScan (first query: walk every object front to back,
// building the structural index as a side effect) or NewJSONMapScan (later
// queries: jump via recorded value offsets, recording any newly touched
// paths adaptively).
type JSONScan struct {
	schema    vector.Schema
	batchSize int
	data      []byte

	// Sequential mode.
	matcher *jsonMatcher
	nexpect int
	rec     *jsonidx.Recorder
	recOffs []int64

	// ViaMap (structural index) mode.
	readers  []jsonColReader
	nrows    int64
	adaptive *jsonidx.Recorder
	// predReaders run first (dense) and feed the vectorized conjunction; the
	// remaining readers honour the selection when they can (recorded-offset
	// navigation) and run dense when they must (adaptive recording).
	predReaders []int
	restReaders []int
	predEval    []slotPred
	selBuf      []int32
	skip        func(start, end int64) bool

	// Sequential pushdown state.
	hasPreds bool
	failed   bool
	nneed    int
	syn      *synopsis.Builder

	// Pushdown statistics.
	rowsPruned    int64
	blocksSkipped int64

	// Row range [rngStart, rngEnd) restricts a ViaMap scan to a morsel of
	// the file; the zero rngEnd means "to the last row".
	rngStart, rngEnd int64

	emitRID   bool
	ridSlot   int
	pos       int
	row       int64
	committed bool
	out       *vector.Batch
}

// PushStats reports how many rows pushed-down predicates short-circuited and
// how many batch ranges zone-map skip tests excluded inside this scan.
func (s *JSONScan) PushStats() (rowsPruned, blocksSkipped int64) {
	return s.rowsPruned, s.blocksSkipped
}

// SetRowRange restricts a ViaMap scan to rows [start, end), the row-morsel
// form used by parallel plans over a populated structural index. The emitted
// row ids stay absolute. Adaptive recordings staged by a ranged scan are
// discarded at commit (their row counts never match the whole file).
func (s *JSONScan) SetRowRange(start, end int64) error {
	if s.readers == nil {
		return fmt.Errorf("jit: row ranges require a via-map json scan")
	}
	if start < 0 || end < start || end > s.nrows {
		return fmt.Errorf("jit: row range [%d,%d) outside 0..%d", start, end, s.nrows)
	}
	s.rngStart, s.rngEnd = start, end
	return nil
}

// NewJSONSequentialScan generates a sequential access path over a JSONL
// file: a per-query matcher tree covering exactly the requested paths, with
// conversions resolved per leaf. When idx is non-nil (and unpopulated) the
// scan records row starts and the value offsets of every requested path,
// committing them to the index at end of file.
func NewJSONSequentialScan(data []byte, t *catalog.Table, need []int,
	idx *jsonidx.Index, emitRID bool, batchSize int) (*JSONScan, error) {
	return NewJSONSequentialScanPush(data, t, need, idx, emitRID, batchSize, Pushdown{})
}

// NewJSONSequentialScanPush generates a sequential access path with pushed-
// down predicates inlined into the matcher's leaf actions: a failing check
// marks the row, and every later matched member is then only skipped over
// (offset recording still happens, so the structural index stays complete)
// without converting its value. opts.Skip is ignored (a sequential scan must
// visit every row).
func NewJSONSequentialScanPush(data []byte, t *catalog.Table, need []int,
	idx *jsonidx.Index, emitRID bool, batchSize int, opts Pushdown) (*JSONScan, error) {
	if t.Format != catalog.JSON {
		return nil, fmt.Errorf("jit: json scan got format %s", t.Format)
	}
	if err := validatePreds(t, need, opts.Preds); err != nil {
		return nil, err
	}
	if batchSize <= 0 {
		batchSize = vector.DefaultBatchSize
	}
	schema, err := scanSchema(t, need, emitRID)
	if err != nil {
		return nil, err
	}
	s := &JSONScan{
		data:      data,
		schema:    schema,
		batchSize: batchSize,
		emitRID:   emitRID,
		ridSlot:   len(need),
		nneed:     len(need),
		hasPreds:  len(opts.Preds) > 0,
		syn:       opts.Syn,
	}
	s.out = vector.NewBatch(schema.Types(), batchSize)

	recSlot := make(map[string]int)
	if idx != nil {
		paths := make([]string, len(need))
		for i, c := range need {
			paths[i] = t.Schema[c].Name
		}
		s.rec = idx.Record(paths)
		staged := s.rec.Paths()
		s.recOffs = make([]int64, len(staged))
		for i, p := range staged {
			recSlot[p] = i
		}
	}
	entries := make([]jsonEntry, len(need))
	for i, c := range need {
		path := t.Schema[c].Name
		rec := -1
		if ri, ok := recSlot[path]; ok {
			rec = ri
		}
		switch t.Schema[c].Type {
		case vector.Int64, vector.Float64:
		default:
			return nil, fmt.Errorf("jit: unsupported JSON column type %s", t.Schema[c].Type)
		}
		entries[i] = jsonEntry{path: path, slot: i, rec: rec, typ: t.Schema[c].Type}
	}
	m, nleaves, err := compileJSONMatcher(entries)
	if err != nil {
		return nil, err
	}
	// Attach the inlined predicate checks and synopsis accumulators to the
	// compiled leaf targets.
	for _, c := range need {
		tgt := m.target(jsonfile.SplitPath(t.Schema[c].Name))
		tgt.acc = opts.Syn.Acc(c)
		if ps := predsFor(opts.Preds, c); len(ps) > 0 {
			if t.Schema[c].Type == vector.Int64 {
				tgt.testI = intPredTest(ps)
			} else {
				tgt.testF = floatPredTest(ps)
			}
		}
	}
	s.matcher, s.nexpect = m, nleaves
	return s, nil
}

// NewJSONMapScan generates a structural-index access path: for each
// requested path the generator resolves, once, whether recorded value
// offsets exist (jump straight to the value) or the row-start offsets must
// be used (walk the object from the row start, recording the path's offsets
// as a side effect — the adaptive population of the structural index).
// Execution is column-at-a-time over each batch's row range.
func NewJSONMapScan(data []byte, t *catalog.Table, need []int, idx *jsonidx.Index,
	emitRID bool, batchSize int) (*JSONScan, error) {
	return NewJSONMapScanPush(data, t, need, idx, emitRID, batchSize, Pushdown{})
}

// NewJSONMapScanPush generates a structural-index access path with pushdown:
// predicate columns are read first (dense), the conjunction is evaluated
// vectorized, and recorded-offset columns are then parsed only for
// qualifying rows; emitted batches carry a selection vector. Columns needing
// adaptive recording always read dense (the index must cover every row).
// opts.Skip applies only when no adaptive recording is staged — skipped rows
// could never be recorded — and the constructor drops it otherwise.
func NewJSONMapScanPush(data []byte, t *catalog.Table, need []int, idx *jsonidx.Index,
	emitRID bool, batchSize int, opts Pushdown) (*JSONScan, error) {
	if t.Format != catalog.JSON {
		return nil, fmt.Errorf("jit: json scan got format %s", t.Format)
	}
	if idx == nil || idx.NRows() == 0 {
		return nil, fmt.Errorf("jit: json map scan requires a populated structural index")
	}
	if err := validatePreds(t, need, opts.Preds); err != nil {
		return nil, err
	}
	if batchSize <= 0 {
		batchSize = vector.DefaultBatchSize
	}
	schema, err := scanSchema(t, need, emitRID)
	if err != nil {
		return nil, err
	}
	s := &JSONScan{
		data:      data,
		schema:    schema,
		batchSize: batchSize,
		nrows:     idx.NRows(),
		emitRID:   emitRID,
		ridSlot:   len(need),
		nneed:     len(need),
	}
	s.out = vector.NewBatch(schema.Types(), batchSize)

	// Declare the untracked paths up front so one recorder stages them all.
	var newPaths []string
	for _, c := range need {
		if p := t.Schema[c].Name; !idx.Tracked(p) {
			newPaths = append(newPaths, p)
		}
	}
	if len(newPaths) > 0 {
		s.adaptive = idx.Record(newPaths)
	}
	if s.adaptive == nil {
		s.skip = opts.Skip
	}
	adaptSlot := make(map[string]int)
	if s.adaptive != nil {
		for i, p := range s.adaptive.Paths() {
			adaptSlot[p] = i
		}
	}
	for i, c := range need {
		r, err := newJSONColReader(data, t, c, idx, s.adaptive, adaptSlot)
		if err != nil {
			return nil, err
		}
		s.readers = append(s.readers, r)
		if ps := predsFor(opts.Preds, c); len(ps) > 0 {
			s.predReaders = append(s.predReaders, i)
			for _, p := range ps {
				s.predEval = append(s.predEval, slotPred{slot: i, p: p})
			}
		} else {
			s.restReaders = append(s.restReaders, i)
		}
	}
	return s, nil
}

// newJSONColReader generates the reader for one column; which navigation it
// uses (recorded offsets vs row-start walk) and which conversion applies are
// resolved here, once, and captured as constants.
func newJSONColReader(data []byte, t *catalog.Table, c int, idx *jsonidx.Index,
	adaptive *jsonidx.Recorder, adaptSlot map[string]int) (jsonColReader, error) {
	path := t.Schema[c].Name
	typ := t.Schema[c].Type
	if positions := idx.Positions(path); positions != nil {
		switch typ {
		case vector.Int64:
			return func(rowStart, rowEnd int64, sel []int32, out *vector.Vector) error {
				if sel != nil {
					base := out.Extend(int(rowEnd - rowStart))
					for _, si := range sel {
						p := positions[rowStart+int64(si)]
						end := jsonfile.NumberEnd(data, int(p))
						out.Int64s[base+int(si)] = bytesconv.ParseInt64Fast(data[p:end])
					}
					return nil
				}
				for _, p := range positions[rowStart:rowEnd] {
					end := jsonfile.NumberEnd(data, int(p))
					out.Int64s = append(out.Int64s, bytesconv.ParseInt64Fast(data[p:end]))
				}
				return nil
			}, nil
		case vector.Float64:
			return func(rowStart, rowEnd int64, sel []int32, out *vector.Vector) error {
				if sel != nil {
					base := out.Extend(int(rowEnd - rowStart))
					for _, si := range sel {
						p := positions[rowStart+int64(si)]
						end := jsonfile.NumberEnd(data, int(p))
						v, err := bytesconv.ParseFloat64(data[p:end])
						if err != nil {
							return fmt.Errorf("jit json map scan: %w", err)
						}
						out.Float64s[base+int(si)] = v
					}
					return nil
				}
				for _, p := range positions[rowStart:rowEnd] {
					end := jsonfile.NumberEnd(data, int(p))
					v, err := bytesconv.ParseFloat64(data[p:end])
					if err != nil {
						return fmt.Errorf("jit json map scan: %w", err)
					}
					out.Float64s = append(out.Float64s, v)
				}
				return nil
			}, nil
		default:
			return nil, fmt.Errorf("jit: unsupported JSON column type %s", typ)
		}
	}
	// Untracked path: walk from the recorded row starts, recording offsets.
	// The walk runs dense regardless of any selection — the adaptive
	// recording must cover every row for the index to stay sound.
	segs := jsonfile.SplitPath(path)
	ai := adaptSlot[path]
	switch typ {
	case vector.Int64, vector.Float64:
	default:
		return nil, fmt.Errorf("jit: unsupported JSON column type %s", typ)
	}
	isInt := typ == vector.Int64
	return func(rowStart, rowEnd int64, sel []int32, out *vector.Vector) error {
		for r := rowStart; r < rowEnd; r++ {
			pos := jsonfile.FindPath(data, int(idx.RowStart(r)), segs)
			if pos < 0 {
				return fmt.Errorf("jit json map scan: row %d: path %q absent", r, path)
			}
			if adaptive != nil {
				adaptive.AppendPathOffset(ai, int64(pos))
			}
			end := jsonfile.NumberEnd(data, pos)
			if isInt {
				v, err := bytesconv.ParseInt64(data[pos:end])
				if err != nil {
					return fmt.Errorf("jit json map scan: row %d path %q: %w", r, path, err)
				}
				out.Int64s = append(out.Int64s, v)
			} else {
				v, err := bytesconv.ParseFloat64(data[pos:end])
				if err != nil {
					return fmt.Errorf("jit json map scan: row %d path %q: %w", r, path, err)
				}
				out.Float64s = append(out.Float64s, v)
			}
		}
		return nil
	}, nil
}

// walkObject runs the compiled matcher over one object: every member either
// hits a target (record offset, descend, or parse with the pre-resolved
// conversion) or is skipped wholesale. It returns the position past the
// object and the number of leaf targets found.
func (s *JSONScan) walkObject(m *jsonMatcher, pos int) (int, int, error) {
	data := s.data
	pos, ok := jsonfile.EnterObject(data, pos)
	if !ok {
		return pos, 0, fmt.Errorf("jit json scan: row %d: expected object at offset %d", s.row, pos)
	}
	found := 0
	for {
		ks, ke, vpos, next, done, err := jsonfile.NextMember(data, pos)
		if err != nil {
			return pos, found, fmt.Errorf("jit json scan: row %d: %w", s.row, err)
		}
		if done {
			return next, found, nil
		}
		key := data[ks:ke]
		var tgt *jsonTarget
		for i, k := range m.keys {
			if bytes.Equal(k, key) {
				tgt = m.tgts[i]
				break
			}
		}
		if tgt == nil {
			pos = jsonfile.SkipValue(data, next)
			continue
		}
		if tgt.rec >= 0 {
			s.recOffs[tgt.rec] = int64(vpos)
		}
		if tgt.sub != nil {
			var sub int
			pos, sub, err = s.walkObject(tgt.sub, vpos)
			if err != nil {
				return pos, found, err
			}
			found += sub
			continue
		}
		if tgt.slot < 0 || s.failed {
			// Unmaterialised leaf, or a pushed-down predicate already failed
			// this row: the offset is recorded above, the value is skipped
			// without conversion — the JSON form of "short-circuit the rest
			// of the row".
			found++
			pos = jsonfile.SkipValue(data, next)
			continue
		}
		end := jsonfile.NumberEnd(data, vpos)
		switch tgt.typ {
		case vector.Int64:
			v, err := bytesconv.ParseInt64(data[vpos:end])
			if err != nil {
				return pos, found, fmt.Errorf("jit json scan: row %d key %q: %w", s.row, key, err)
			}
			if tgt.acc != nil {
				tgt.acc.ObserveInt64(v)
			}
			s.out.Cols[tgt.slot].Int64s = append(s.out.Cols[tgt.slot].Int64s, v)
			if tgt.testI != nil && !tgt.testI(v) {
				s.failed = true
			}
		case vector.Float64:
			v, err := bytesconv.ParseFloat64(data[vpos:end])
			if err != nil {
				return pos, found, fmt.Errorf("jit json scan: row %d key %q: %w", s.row, key, err)
			}
			if tgt.acc != nil {
				tgt.acc.ObserveFloat64(v)
			}
			s.out.Cols[tgt.slot].Float64s = append(s.out.Cols[tgt.slot].Float64s, v)
			if tgt.testF != nil && !tgt.testF(v) {
				s.failed = true
			}
		}
		found++
		pos = end
	}
}

// Schema implements exec.Operator.
func (s *JSONScan) Schema() vector.Schema { return s.schema }

// Open implements exec.Operator.
func (s *JSONScan) Open() error {
	s.pos = 0
	s.row = s.rngStart
	s.failed = false
	return nil
}

// Next implements exec.Operator.
func (s *JSONScan) Next() (*vector.Batch, error) {
	s.out.Reset()
	if s.readers != nil {
		return s.nextViaMap()
	}
	return s.nextSequential()
}

func (s *JSONScan) nextSequential() (*vector.Batch, error) {
	data := s.data
	n := 0
	for n < s.batchSize && s.pos < len(data) {
		if data[s.pos] == '\n' {
			s.pos++ // tolerate blank separator lines
			continue
		}
		rowStart := s.pos
		pos, found, err := s.walkObject(s.matcher, s.pos)
		if err != nil {
			return nil, err
		}
		if found != s.nexpect {
			return nil, fmt.Errorf("jit json scan: row %d: %d of %d required paths present",
				s.row, found, s.nexpect)
		}
		if s.syn != nil {
			s.syn.Advance(1)
		}
		if s.rec != nil {
			s.rec.AppendRow(int64(rowStart), s.recOffs)
		}
		s.pos = jsonfile.NextRow(data, pos)
		if s.failed {
			// A pushed-down predicate rejected the row: roll back whatever
			// the walk appended before the check failed. The structural
			// index recording above is complete regardless.
			s.failed = false
			for i := 0; i < s.nneed; i++ {
				s.out.Cols[i].Truncate(n)
			}
			s.rowsPruned++
			s.row++
			continue
		}
		if s.emitRID {
			s.out.Cols[s.ridSlot].AppendInt64(s.row)
		}
		s.row++
		n++
	}
	if s.pos >= len(data) && s.rec != nil && !s.committed {
		s.rec.Commit()
		s.committed = true
	}
	if n == 0 {
		return nil, nil
	}
	return s.out, nil
}

func (s *JSONScan) nextViaMap() (*vector.Batch, error) {
	limit := s.nrows
	if s.rngEnd > 0 {
		limit = s.rngEnd
	}
	for {
		if s.row >= limit {
			return nil, nil
		}
		end := s.row + int64(s.batchSize)
		if end > limit {
			end = limit
		}
		// Zone-map exclusion: only set when no adaptive recording is staged,
		// so skipping rows cannot leave recording holes.
		if s.skip != nil && s.skip(s.row, end) {
			s.blocksSkipped++
			s.rowsPruned += end - s.row
			s.row = end
			continue
		}
		s.out.Reset()
		m := int(end - s.row)
		var sel []int32
		if len(s.predEval) > 0 {
			for _, ri := range s.predReaders {
				if err := s.readers[ri](s.row, end, nil, s.out.Cols[ri]); err != nil {
					return nil, err
				}
			}
			var all bool
			sel, all = evalSlotPreds(s.predEval, s.out, m, s.selBuf)
			s.selBuf = sel[:0]
			switch {
			case all:
				sel = nil
			case len(sel) == 0 && s.adaptive == nil:
				s.rowsPruned += int64(m)
				s.row = end
				continue
			default:
				s.rowsPruned += int64(m - len(sel))
				if sel == nil {
					sel = emptySel // empty but non-nil: readers must not run dense
				}
			}
			for _, ri := range s.restReaders {
				if err := s.readers[ri](s.row, end, sel, s.out.Cols[ri]); err != nil {
					return nil, err
				}
			}
			if sel != nil && len(sel) == 0 {
				// Adaptive recording forced the dense walks to run; emit
				// nothing for this range but keep pulling.
				s.row = end
				if s.row >= s.nrows && s.adaptive != nil && !s.committed {
					s.adaptive.Commit()
					s.committed = true
				}
				continue
			}
		} else {
			for i, r := range s.readers {
				if err := r(s.row, end, nil, s.out.Cols[i]); err != nil {
					return nil, err
				}
			}
		}
		if s.emitRID {
			rid := s.out.Cols[s.ridSlot]
			for i := s.row; i < end; i++ {
				rid.AppendInt64(i)
			}
		}
		s.out.Sel = sel
		s.row = end
		if s.row >= s.nrows && s.adaptive != nil && !s.committed {
			s.adaptive.Commit()
			s.committed = true
		}
		return s.out, nil
	}
}

// Close implements exec.Operator.
func (s *JSONScan) Close() error { return nil }

var _ exec.Operator = (*JSONScan)(nil)

// NewJSONLateScan generates a column-shred access path over a JSONL file:
// for each surviving row id it jumps via the structural index — straight to
// the value for tracked paths, to the row start plus one object walk for
// untracked ones.
func NewJSONLateScan(child exec.Operator, data []byte, t *catalog.Table, cols []int,
	idx *jsonidx.Index, ridIdx int) (*LateScan, error) {
	if t.Format != catalog.JSON {
		return nil, fmt.Errorf("jit: json late scan got format %s", t.Format)
	}
	if idx == nil || idx.NRows() == 0 {
		return nil, fmt.Errorf("jit: json late scan requires a populated structural index")
	}
	s, err := newLateScan(child, ridIdx, t, cols)
	if err != nil {
		return nil, err
	}
	nrows := idx.NRows()
	type jsonFetch struct {
		slot int
		fn   func(rid int64, out *vector.Vector) error
	}
	var fetchers []jsonFetch
	for slot, c := range cols {
		path := t.Schema[c].Name
		typ := t.Schema[c].Type
		positions := idx.Positions(path)
		var segs []string
		if positions == nil {
			segs = jsonfile.SplitPath(path)
		}
		// locate resolves the value offset for one row with whichever
		// navigation the generator chose above.
		locate := func(rid int64) (int, error) {
			if positions != nil {
				return int(positions[rid]), nil
			}
			pos := jsonfile.FindPath(data, int(idx.RowStart(rid)), segs)
			if pos < 0 {
				return 0, fmt.Errorf("jit json late scan: row %d: path %q absent", rid, path)
			}
			return pos, nil
		}
		switch typ {
		case vector.Int64:
			fetchers = append(fetchers, jsonFetch{slot, func(rid int64, out *vector.Vector) error {
				pos, err := locate(rid)
				if err != nil {
					return err
				}
				end := jsonfile.NumberEnd(data, pos)
				v, err := bytesconv.ParseInt64(data[pos:end])
				if err != nil {
					return fmt.Errorf("jit json late scan: row %d path %q: %w", rid, path, err)
				}
				out.Int64s = append(out.Int64s, v)
				return nil
			}})
		case vector.Float64:
			fetchers = append(fetchers, jsonFetch{slot, func(rid int64, out *vector.Vector) error {
				pos, err := locate(rid)
				if err != nil {
					return err
				}
				end := jsonfile.NumberEnd(data, pos)
				v, err := bytesconv.ParseFloat64(data[pos:end])
				if err != nil {
					return fmt.Errorf("jit json late scan: row %d path %q: %w", rid, path, err)
				}
				out.Float64s = append(out.Float64s, v)
				return nil
			}})
		default:
			return nil, fmt.Errorf("jit: unsupported JSON column type %s", typ)
		}
	}
	s.fetch = func(rids []int64, outs []*vector.Vector) error {
		for _, f := range fetchers {
			out := outs[f.slot]
			for _, rid := range rids {
				if rid < 0 || rid >= nrows {
					return fmt.Errorf("jit: late scan row id %d out of range", rid)
				}
				if err := f.fn(rid, out); err != nil {
					return err
				}
			}
		}
		return nil
	}
	return s, nil
}
