package jit

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"time"

	"rawdb/internal/catalog"
	"rawdb/internal/exec"
	"rawdb/internal/insitu"
	"rawdb/internal/posmap"
	"rawdb/internal/storage/binfile"
	"rawdb/internal/storage/csvfile"
	"rawdb/internal/storage/rootfile"
	"rawdb/internal/vector"
)

func genTable(t *testing.T, rows, ncols int, seed int64) (csvData, binData []byte, tab *catalog.Table, vals [][]int64) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	types := make([]vector.Type, ncols)
	schema := make([]catalog.Column, ncols)
	for c := 0; c < ncols; c++ {
		types[c] = vector.Int64
		schema[c] = catalog.Column{Name: colName(c), Type: vector.Int64}
	}
	var cbuf, bbuf bytes.Buffer
	cw := csvfile.NewWriter(&cbuf, types)
	bw, err := binfile.NewWriter(&bbuf, types, int64(rows))
	if err != nil {
		t.Fatal(err)
	}
	vals = make([][]int64, rows)
	row := make([]int64, ncols)
	for r := 0; r < rows; r++ {
		for c := range row {
			row[c] = rng.Int63n(1_000_000_000)
		}
		vals[r] = append([]int64(nil), row...)
		if err := cw.WriteRow(row, nil); err != nil {
			t.Fatal(err)
		}
		if err := bw.WriteRow(row, nil); err != nil {
			t.Fatal(err)
		}
	}
	if err := cw.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := bw.Close(); err != nil {
		t.Fatal(err)
	}
	tab = &catalog.Table{Name: "t", Format: catalog.CSV, Schema: schema}
	return cbuf.Bytes(), bbuf.Bytes(), tab, vals
}

func colName(c int) string {
	return "c" + string(rune('a'+c/10)) + string(rune('0'+c%10))
}

func checkColumn(t *testing.T, got *vector.Vector, vals [][]int64, col int) {
	t.Helper()
	if got.Len() != len(vals) {
		t.Fatalf("column %d: got %d rows, want %d", col, got.Len(), len(vals))
	}
	for r := range vals {
		if got.Int64s[r] != vals[r][col] {
			t.Fatalf("column %d row %d: got %d, want %d", col, r, got.Int64s[r], vals[r][col])
		}
	}
}

func TestCSVSequentialScanMatchesReference(t *testing.T) {
	data, _, tab, vals := genTable(t, 400, 9, 10)
	pm := posmap.New(posmap.Policy{EveryK: 4}, 9) // tracks 0,4,8
	s, err := NewCSVSequentialScan(data, tab, []int{1, 8}, pm, true, 53)
	if err != nil {
		t.Fatal(err)
	}
	out, err := exec.Collect(s)
	if err != nil {
		t.Fatal(err)
	}
	checkColumn(t, out[0], vals, 1)
	checkColumn(t, out[1], vals, 8)
	if pm.NRows() != 400 {
		t.Fatalf("pm rows = %d", pm.NRows())
	}
	for r := 0; r < 400; r++ {
		if out[2].Int64s[r] != int64(r) {
			t.Fatalf("rid[%d] = %d", r, out[2].Int64s[r])
		}
	}
}

// TestJITPMatchesInSituPM: both scan families must build identical positional
// maps over the same file.
func TestJITPMMatchesInSituPM(t *testing.T) {
	data, _, tab, _ := genTable(t, 150, 10, 11)
	pmJ := posmap.New(posmap.Policy{EveryK: 3}, 10)
	pmI := posmap.New(posmap.Policy{EveryK: 3}, 10)
	sj, err := NewCSVSequentialScan(data, tab, []int{2}, pmJ, false, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := exec.Collect(sj); err != nil {
		t.Fatal(err)
	}
	si, err := insitu.NewCSVScan(data, tab, []int{2}, nil, pmI, false, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := exec.Collect(si); err != nil {
		t.Fatal(err)
	}
	for _, c := range pmJ.TrackedColumns() {
		pj, pi := pmJ.Positions(c), pmI.Positions(c)
		if len(pj) != len(pi) {
			t.Fatalf("col %d: %d vs %d positions", c, len(pj), len(pi))
		}
		for r := range pj {
			if pj[r] != pi[r] {
				t.Fatalf("col %d row %d: jit pos %d, insitu pos %d", c, r, pj[r], pi[r])
			}
		}
	}
}

func TestCSVMapScan(t *testing.T) {
	data, _, tab, vals := genTable(t, 300, 12, 12)
	pm := posmap.New(posmap.Policy{EveryK: 5}, 12) // 0,5,10
	s1, err := NewCSVSequentialScan(data, tab, []int{0}, pm, false, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := exec.Collect(s1); err != nil {
		t.Fatal(err)
	}
	// Tracked column (10) and nearby column (12? no — 7, skip 2 from 5).
	s2, err := NewCSVMapScan(data, tab, []int{10, 7}, pm, true, 41)
	if err != nil {
		t.Fatal(err)
	}
	out, err := exec.Collect(s2)
	if err != nil {
		t.Fatal(err)
	}
	checkColumn(t, out[0], vals, 10)
	checkColumn(t, out[1], vals, 7)
	for r := range vals {
		if out[2].Int64s[r] != int64(r) {
			t.Fatalf("rid[%d] = %d", r, out[2].Int64s[r])
		}
	}
}

func TestCSVMapScanRequiresMap(t *testing.T) {
	data, _, tab, _ := genTable(t, 10, 4, 13)
	if _, err := NewCSVMapScan(data, tab, []int{1}, nil, false, 0); err == nil {
		t.Fatal("expected error for nil positional map")
	}
	pm := posmap.New(posmap.Policy{EveryK: 2}, 4)
	if _, err := NewCSVMapScan(data, tab, []int{1}, pm, false, 0); err == nil {
		t.Fatal("expected error for empty positional map")
	}
}

func TestBinScanMatchesReference(t *testing.T) {
	_, bdata, tab, vals := genTable(t, 350, 7, 14)
	btab := *tab
	btab.Format = catalog.Binary
	r, err := binfile.NewReader(bdata)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewBinScan(r, &btab, []int{0, 6, 3}, true, 64)
	if err != nil {
		t.Fatal(err)
	}
	out, err := exec.Collect(s)
	if err != nil {
		t.Fatal(err)
	}
	checkColumn(t, out[0], vals, 0)
	checkColumn(t, out[1], vals, 6)
	checkColumn(t, out[2], vals, 3)
	for i := range vals {
		if out[3].Int64s[i] != int64(i) {
			t.Fatalf("rid[%d] = %d", i, out[3].Int64s[i])
		}
	}
}

// TestJITAgreesWithInSitu is the central equivalence property: the JIT and
// general-purpose access paths must produce byte-identical columns on every
// mode over the same file.
func TestJITAgreesWithInSitu(t *testing.T) {
	data, bdata, tab, _ := genTable(t, 200, 10, 15)
	need := []int{1, 4, 9}

	pmJ := posmap.New(posmap.Policy{EveryK: 4}, 10)
	sj, err := NewCSVSequentialScan(data, tab, need, pmJ, false, 33)
	if err != nil {
		t.Fatal(err)
	}
	outJ, err := exec.Collect(sj)
	if err != nil {
		t.Fatal(err)
	}
	pmI := posmap.New(posmap.Policy{EveryK: 4}, 10)
	si, err := insitu.NewCSVScan(data, tab, need, nil, pmI, false, 33)
	if err != nil {
		t.Fatal(err)
	}
	outI, err := exec.Collect(si)
	if err != nil {
		t.Fatal(err)
	}
	for c := range need {
		for r := 0; r < 200; r++ {
			if outJ[c].Int64s[r] != outI[c].Int64s[r] {
				t.Fatalf("sequential: col %d row %d differ", c, r)
			}
		}
	}

	// ViaMap mode.
	sj2, err := NewCSVMapScan(data, tab, []int{6}, pmJ, false, 0)
	if err != nil {
		t.Fatal(err)
	}
	outJ2, err := exec.Collect(sj2)
	if err != nil {
		t.Fatal(err)
	}
	si2, err := insitu.NewCSVScan(data, tab, []int{6}, pmI, nil, false, 0)
	if err != nil {
		t.Fatal(err)
	}
	outI2, err := exec.Collect(si2)
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < 200; r++ {
		if outJ2[0].Int64s[r] != outI2[0].Int64s[r] {
			t.Fatalf("viamap: row %d differ", r)
		}
	}

	// Binary mode.
	btab := *tab
	btab.Format = catalog.Binary
	rd, err := binfile.NewReader(bdata)
	if err != nil {
		t.Fatal(err)
	}
	sj3, err := NewBinScan(rd, &btab, need, false, 0)
	if err != nil {
		t.Fatal(err)
	}
	outJ3, err := exec.Collect(sj3)
	if err != nil {
		t.Fatal(err)
	}
	si3, err := insitu.NewBinScan(rd, &btab, need, false, 0)
	if err != nil {
		t.Fatal(err)
	}
	outI3, err := exec.Collect(si3)
	if err != nil {
		t.Fatal(err)
	}
	for c := range need {
		for r := 0; r < 200; r++ {
			if outJ3[c].Int64s[r] != outI3[c].Int64s[r] {
				t.Fatalf("binary: col %d row %d differ", c, r)
			}
		}
	}
}

func TestRootScan(t *testing.T) {
	var buf bytes.Buffer
	w := rootfile.NewWriter(&buf, rootfile.Options{BasketEntries: 32})
	tw := w.Tree("events")
	idb := tw.Branch("id", vector.Int64)
	ptb := tw.Branch("pt", vector.Float64)
	const n = 150
	for i := 0; i < n; i++ {
		idb.AppendInt64(int64(i * 3))
		ptb.AppendFloat64(float64(i) / 4)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	f, err := rootfile.Parse(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	tree, _ := f.Tree("events")
	tab := &catalog.Table{Name: "ev", Format: catalog.Root, Tree: "events",
		Schema: []catalog.Column{{Name: "id", Type: vector.Int64}, {Name: "pt", Type: vector.Float64}}}
	s, err := NewRootScan(tree, tab, []int{0, 1}, true, 40)
	if err != nil {
		t.Fatal(err)
	}
	out, err := exec.Collect(s)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if out[0].Int64s[i] != int64(i*3) || out[1].Float64s[i] != float64(i)/4 {
			t.Fatalf("row %d = %d/%v", i, out[0].Int64s[i], out[1].Float64s[i])
		}
		if out[2].Int64s[i] != int64(i) {
			t.Fatalf("rid[%d] = %d", i, out[2].Int64s[i])
		}
	}
	// Unknown branch and type mismatch.
	bad := *tab
	bad.Schema = []catalog.Column{{Name: "nope", Type: vector.Int64}}
	if _, err := NewRootScan(tree, &bad, []int{0}, false, 0); err == nil {
		t.Fatal("expected missing-branch error")
	}
	bad.Schema = []catalog.Column{{Name: "pt", Type: vector.Int64}}
	if _, err := NewRootScan(tree, &bad, []int{0}, false, 0); err == nil {
		t.Fatal("expected type-mismatch error")
	}
}

// lateChild builds a filtered child pipeline emitting row ids, for late scan
// tests: rows whose col0 value < threshold survive.
func lateChild(t *testing.T, data []byte, tab *catalog.Table, pm *posmap.Map, threshold int64) exec.Operator {
	t.Helper()
	s, err := NewCSVMapScan(data, tab, []int{0}, pm, true, 0)
	if err != nil {
		t.Fatal(err)
	}
	f, err := exec.NewFilter(s, []exec.Pred{{Col: 0, Op: exec.Lt, I64: threshold}})
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestCSVLateScan(t *testing.T) {
	data, _, tab, vals := genTable(t, 300, 10, 16)
	pm := posmap.New(posmap.Policy{EveryK: 4}, 10) // 0,4,8
	s1, _ := NewCSVSequentialScan(data, tab, []int{0}, pm, false, 0)
	if _, err := exec.Collect(s1); err != nil {
		t.Fatal(err)
	}
	const threshold = 500_000_000
	child := lateChild(t, data, tab, pm, threshold)
	late, err := NewCSVLateScan(child, data, tab, []int{6}, pm, 1)
	if err != nil {
		t.Fatal(err)
	}
	out, err := exec.Collect(late)
	if err != nil {
		t.Fatal(err)
	}
	// Reference: qualifying rows in order.
	var want []int64
	for r := range vals {
		if vals[r][0] < threshold {
			want = append(want, vals[r][6])
		}
	}
	got := out[2] // child cols: col0, rid; appended: col6
	if got.Len() != len(want) {
		t.Fatalf("late scan produced %d rows, want %d", got.Len(), len(want))
	}
	for i := range want {
		if got.Int64s[i] != want[i] {
			t.Fatalf("row %d: got %d, want %d", i, got.Int64s[i], want[i])
		}
	}
}

func TestCSVLateScanMultiColumn(t *testing.T) {
	data, _, tab, vals := genTable(t, 200, 10, 17)
	pm := posmap.New(posmap.Policy{EveryK: 4}, 10)
	s1, _ := NewCSVSequentialScan(data, tab, []int{0}, pm, false, 0)
	if _, err := exec.Collect(s1); err != nil {
		t.Fatal(err)
	}
	const threshold = 700_000_000
	child := lateChild(t, data, tab, pm, threshold)
	// Columns 5 and 6 share anchor 4: one parsing pass (multi-column shred).
	late, err := NewCSVLateScan(child, data, tab, []int{6, 5}, pm, 1)
	if err != nil {
		t.Fatal(err)
	}
	out, err := exec.Collect(late)
	if err != nil {
		t.Fatal(err)
	}
	var want5, want6 []int64
	for r := range vals {
		if vals[r][0] < threshold {
			want5 = append(want5, vals[r][5])
			want6 = append(want6, vals[r][6])
		}
	}
	// Output order: sorted columns → slot 0 = col5, slot 1 = col6.
	if out[2].Len() != len(want5) {
		t.Fatalf("rows = %d, want %d", out[2].Len(), len(want5))
	}
	for i := range want5 {
		if out[2].Int64s[i] != want5[i] || out[3].Int64s[i] != want6[i] {
			t.Fatalf("row %d mismatch", i)
		}
	}
}

func TestBinLateScan(t *testing.T) {
	data, bdata, tab, vals := genTable(t, 250, 8, 18)
	pm := posmap.New(posmap.Policy{EveryK: 4}, 8)
	s1, _ := NewCSVSequentialScan(data, tab, []int{0}, pm, false, 0)
	if _, err := exec.Collect(s1); err != nil {
		t.Fatal(err)
	}
	btab := *tab
	btab.Format = catalog.Binary
	rd, err := binfile.NewReader(bdata)
	if err != nil {
		t.Fatal(err)
	}
	child, err := NewBinScan(rd, &btab, []int{0}, true, 0)
	if err != nil {
		t.Fatal(err)
	}
	f, err := exec.NewFilter(child, []exec.Pred{{Col: 0, Op: exec.Lt, I64: 300_000_000}})
	if err != nil {
		t.Fatal(err)
	}
	late, err := NewBinLateScan(f, rd, &btab, []int{7}, 1)
	if err != nil {
		t.Fatal(err)
	}
	out, err := exec.Collect(late)
	if err != nil {
		t.Fatal(err)
	}
	var want []int64
	for r := range vals {
		if vals[r][0] < 300_000_000 {
			want = append(want, vals[r][7])
		}
	}
	if out[2].Len() != len(want) {
		t.Fatalf("rows = %d want %d", out[2].Len(), len(want))
	}
	for i := range want {
		if out[2].Int64s[i] != want[i] {
			t.Fatalf("row %d mismatch", i)
		}
	}
}

func TestRootLateScan(t *testing.T) {
	var buf bytes.Buffer
	w := rootfile.NewWriter(&buf, rootfile.Options{BasketEntries: 16})
	tw := w.Tree("ev")
	ib := tw.Branch("id", vector.Int64)
	vb := tw.Branch("v", vector.Int64)
	const n = 120
	for i := 0; i < n; i++ {
		ib.AppendInt64(int64(i % 7))
		vb.AppendInt64(int64(i * 11))
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	f, _ := rootfile.Parse(buf.Bytes())
	tree, _ := f.Tree("ev")
	tab := &catalog.Table{Name: "ev", Format: catalog.Root, Tree: "ev",
		Schema: []catalog.Column{{Name: "id", Type: vector.Int64}, {Name: "v", Type: vector.Int64}}}
	base, err := NewRootScan(tree, tab, []int{0}, true, 0)
	if err != nil {
		t.Fatal(err)
	}
	flt, err := exec.NewFilter(base, []exec.Pred{{Col: 0, Op: exec.Eq, I64: 3}})
	if err != nil {
		t.Fatal(err)
	}
	late, err := NewRootLateScan(flt, tree, tab, []int{1}, 1)
	if err != nil {
		t.Fatal(err)
	}
	out, err := exec.Collect(late)
	if err != nil {
		t.Fatal(err)
	}
	var want []int64
	for i := 0; i < n; i++ {
		if i%7 == 3 {
			want = append(want, int64(i*11))
		}
	}
	if out[2].Len() != len(want) {
		t.Fatalf("rows = %d want %d", out[2].Len(), len(want))
	}
	for i := range want {
		if out[2].Int64s[i] != want[i] {
			t.Fatalf("row %d mismatch", i)
		}
	}
}

func TestLateScanValidation(t *testing.T) {
	data, _, tab, _ := genTable(t, 20, 4, 19)
	pm := posmap.New(posmap.Policy{EveryK: 2}, 4)
	s1, _ := NewCSVSequentialScan(data, tab, []int{0}, pm, false, 0)
	if _, err := exec.Collect(s1); err != nil {
		t.Fatal(err)
	}
	child, _ := NewCSVMapScan(data, tab, []int{0}, pm, true, 0)
	// Bad rid index.
	if _, err := NewCSVLateScan(child, data, tab, []int{1}, pm, 0); err == nil {
		t.Fatal("expected invalid rid column error (col 0 is data, not rid)")
	}
	// Out-of-range column.
	if _, err := NewCSVLateScan(child, data, tab, []int{9}, pm, 1); err == nil {
		t.Fatal("expected out-of-range error")
	}
}

func TestSpecKeyAndSource(t *testing.T) {
	sp := Spec{
		Format:  catalog.CSV,
		Table:   "t",
		Mode:    Sequential,
		Types:   []vector.Type{vector.Int64, vector.Int64, vector.Float64},
		Need:    []int{0, 1},
		PMBuild: []int{1},
		EmitRID: true,
	}
	key := sp.Key()
	if !strings.Contains(key, "csv|t|seq") {
		t.Fatalf("key = %q", key)
	}
	src := sp.Source()
	for _, want := range []string{"convertToInteger", "posmap.col1.append(pos)", "skipFields(data, pos, 1)"} {
		if !strings.Contains(src, want) {
			t.Fatalf("source missing %q:\n%s", want, src)
		}
	}
	// ViaMap emission mentions anchors and skips.
	sp2 := Spec{Format: catalog.CSV, Table: "t", Mode: ViaMap,
		Types: []vector.Type{vector.Int64, vector.Int64, vector.Int64},
		Need:  []int{2}, PMRead: []int{0}}
	if src := sp2.Source(); !strings.Contains(src, "skipFields(data, pos, 2)") {
		t.Fatalf("viamap source:\n%s", src)
	}
	// Binary emission folds offsets.
	sp3 := Spec{Format: catalog.Binary, Table: "t", Mode: Direct,
		Types: []vector.Type{vector.Int64, vector.Float64}, Need: []int{1}}
	if src := sp3.Source(); !strings.Contains(src, "constant offset 8, stride 16") {
		t.Fatalf("binary source:\n%s", src)
	}
	// Root emission calls the library.
	sp4 := Spec{Format: catalog.Root, Table: "ev", Mode: Direct,
		Types: []vector.Type{vector.Int64}, Need: []int{0}}
	if src := sp4.Source(); !strings.Contains(src, "readROOTField") {
		t.Fatalf("root source:\n%s", src)
	}
}

func TestCacheEnsure(t *testing.T) {
	c := NewCache()
	sp := Spec{Format: catalog.Binary, Table: "t", Mode: Direct,
		Types: []vector.Type{vector.Int64}, Need: []int{0}}
	e1, hit := c.Ensure(sp)
	if hit || e1.Compiles != 1 || e1.Source == "" {
		t.Fatalf("first Ensure: hit=%v entry=%+v", hit, e1)
	}
	e2, hit := c.Ensure(sp)
	if !hit || e2 != e1 || e2.Hits != 1 {
		t.Fatalf("second Ensure: hit=%v hits=%d", hit, e2.Hits)
	}
	if c.Len() != 1 {
		t.Fatalf("Len = %d", c.Len())
	}
	c.Reset()
	if c.Len() != 0 {
		t.Fatalf("Len after reset = %d", c.Len())
	}
}

// TestCacheByteEviction pins the byte-accounted LRU behaviour of the
// template cache: entries beyond the capacity evict least-recently-used
// first, a reused template survives, and the newest entry is never evicted.
func TestCacheByteEviction(t *testing.T) {
	mk := func(table string) Spec {
		return Spec{Format: catalog.Binary, Table: table, Mode: Direct,
			Types: []vector.Type{vector.Int64}, Need: []int{0}}
	}
	c := NewCache()
	c.Ensure(mk("t1"))
	one := c.SizeBytes()
	if one <= 0 {
		t.Fatal("entry accounted zero bytes")
	}
	// Capacity for two same-shaped entries (equal key/source lengths).
	c.Reset()
	c.SetCapacityBytes(2 * one)
	c.Ensure(mk("t1"))
	c.Ensure(mk("t2"))
	if c.Len() != 2 {
		t.Fatalf("Len = %d, want 2", c.Len())
	}
	// Touch t1 so t2 is the LRU victim when t3 arrives.
	if _, hit := c.Ensure(mk("t1")); !hit {
		t.Fatal("t1 not cached")
	}
	c.Ensure(mk("t3"))
	if _, hit := c.Ensure(mk("t1")); !hit {
		t.Fatal("recently used t1 was evicted")
	}
	if c.SizeBytes() > 2*one {
		t.Fatalf("size %d exceeds the %d-byte capacity", c.SizeBytes(), 2*one)
	}
	// t2 must have been the victim: re-ensuring it is a miss.
	if _, hit := c.Ensure(mk("t2")); hit {
		t.Fatal("LRU entry t2 survived eviction")
	}
	// A capacity smaller than a single entry still retains the newest.
	c.Reset()
	c.SetCapacityBytes(1)
	c.Ensure(mk("t9"))
	if c.Len() != 1 {
		t.Fatalf("newest entry evicted at Len = %d", c.Len())
	}
	if _, hit := c.Ensure(mk("t9")); !hit {
		t.Fatal("oversized lone entry not reusable")
	}
}

func TestCacheCompileDelay(t *testing.T) {
	c := NewCache()
	var slept time.Duration
	c.sleep = func(d time.Duration) { slept += d }
	c.SetCompileDelay(2 * time.Second)
	sp := Spec{Format: catalog.Binary, Table: "t", Mode: Direct,
		Types: []vector.Type{vector.Int64}, Need: []int{0}}
	c.Ensure(sp)
	if slept != 2*time.Second {
		t.Fatalf("compile delay charged %v", slept)
	}
	c.Ensure(sp) // hit: no extra delay
	if slept != 2*time.Second {
		t.Fatalf("cache hit charged extra delay: %v", slept)
	}
	if entries := c.Entries(); len(entries) != 1 || entries[0].Hits != 1 {
		t.Fatalf("entries = %+v", entries)
	}
}
