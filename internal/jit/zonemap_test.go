package jit

import (
	"bytes"
	"testing"

	"rawdb/internal/catalog"
	"rawdb/internal/exec"
	"rawdb/internal/storage/rootfile"
	"rawdb/internal/vector"
)

// sortedRootFile builds a root-like file whose "v" branch is monotonically
// increasing, so zone maps exclude whole baskets for range predicates.
func sortedRootFile(t *testing.T, n, basket int) (*rootfile.Tree, *catalog.Table) {
	t.Helper()
	var buf bytes.Buffer
	w := rootfile.NewWriter(&buf, rootfile.Options{BasketEntries: basket})
	tw := w.Tree("t")
	vb := tw.Branch("v", vector.Int64)
	fb := tw.Branch("f", vector.Float64)
	for i := 0; i < n; i++ {
		vb.AppendInt64(int64(i))
		fb.AppendFloat64(float64(i) / 2)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	f, err := rootfile.Parse(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	tree, err := f.Tree("t")
	if err != nil {
		t.Fatal(err)
	}
	tab := &catalog.Table{Name: "t", Format: catalog.Root, Tree: "t",
		Schema: []catalog.Column{
			{Name: "v", Type: vector.Int64},
			{Name: "f", Type: vector.Float64},
		}}
	return tree, tab
}

func TestZoneMapBounds(t *testing.T) {
	tree, _ := sortedRootFile(t, 100, 10)
	vb, _ := tree.Branch("v")
	if vb.Baskets() != 10 {
		t.Fatalf("baskets = %d", vb.Baskets())
	}
	lo, hi := vb.IntBounds(3)
	if lo != 30 || hi != 39 {
		t.Fatalf("basket 3 bounds = [%d, %d]", lo, hi)
	}
	first, count := vb.EntryRange(3)
	if first != 30 || count != 10 {
		t.Fatalf("basket 3 range = %d+%d", first, count)
	}
	fb, _ := tree.Branch("f")
	flo, fhi := fb.FloatBounds(9)
	if flo != 45 || fhi != 49.5 {
		t.Fatalf("float basket 9 bounds = [%v, %v]", flo, fhi)
	}
	if vb.BasketOf(35) != 3 || vb.BasketOf(99) != 9 {
		t.Fatalf("BasketOf wrong: %d %d", vb.BasketOf(35), vb.BasketOf(99))
	}
}

func TestRootScanPruning(t *testing.T) {
	tree, tab := sortedRootFile(t, 1000, 50) // 20 baskets of 50

	cases := []struct {
		name        string
		prune       Prune
		wantRows    int
		wantSkipMin int64
	}{
		// v < 100: baskets 0-1 survive, 18 skipped.
		{"lt", Prune{Col: 0, Op: exec.Lt, I64: 100}, 100, 18},
		// v >= 900: baskets 18-19 survive.
		{"ge", Prune{Col: 0, Op: exec.Ge, I64: 900}, 100, 18},
		// v = 500: exactly one basket survives.
		{"eq", Prune{Col: 0, Op: exec.Eq, I64: 500}, 1, 19},
		// float predicate f < 25 (i.e. i < 50): one basket survives.
		{"float", Prune{Col: 1, Op: exec.Lt, F64: 25}, 50, 19},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			sc, err := NewRootScanPruned(tree, tab, []int{0, 1}, true, 64, &c.prune)
			if err != nil {
				t.Fatal(err)
			}
			// The regular filter still applies above the scan.
			var preds []exec.Pred
			if c.prune.Col == 0 {
				preds = []exec.Pred{{Col: 0, Op: c.prune.Op, I64: c.prune.I64}}
			} else {
				preds = []exec.Pred{{Col: 1, Op: c.prune.Op, F64: c.prune.F64}}
			}
			f, err := exec.NewFilter(sc, preds)
			if err != nil {
				t.Fatal(err)
			}
			out, err := exec.Collect(f)
			if err != nil {
				t.Fatal(err)
			}
			if out[0].Len() != c.wantRows {
				t.Fatalf("got %d rows, want %d", out[0].Len(), c.wantRows)
			}
			if sc.SkippedBaskets() < c.wantSkipMin {
				t.Fatalf("skipped %d baskets, want >= %d", sc.SkippedBaskets(), c.wantSkipMin)
			}
			// Row ids must identify the true surviving rows.
			for i := 0; i < out[2].Len(); i++ {
				rid := out[2].Int64s[i]
				if out[0].Int64s[i] != rid {
					t.Fatalf("row %d: v=%d rid=%d", i, out[0].Int64s[i], rid)
				}
			}
		})
	}
}

func TestRootScanPruningAgreesWithUnpruned(t *testing.T) {
	tree, tab := sortedRootFile(t, 777, 32) // uneven last basket
	prune := &Prune{Col: 0, Op: exec.Gt, I64: 400}
	pruned, err := NewRootScanPruned(tree, tab, []int{0}, false, 100, prune)
	if err != nil {
		t.Fatal(err)
	}
	fp, _ := exec.NewFilter(pruned, []exec.Pred{{Col: 0, Op: exec.Gt, I64: 400}})
	plain, err := NewRootScan(tree, tab, []int{0}, false, 100)
	if err != nil {
		t.Fatal(err)
	}
	fu, _ := exec.NewFilter(plain, []exec.Pred{{Col: 0, Op: exec.Gt, I64: 400}})
	a, err := exec.Collect(fp)
	if err != nil {
		t.Fatal(err)
	}
	b, err := exec.Collect(fu)
	if err != nil {
		t.Fatal(err)
	}
	if a[0].Len() != b[0].Len() {
		t.Fatalf("pruned %d rows vs unpruned %d", a[0].Len(), b[0].Len())
	}
	for i := range a[0].Int64s {
		if a[0].Int64s[i] != b[0].Int64s[i] {
			t.Fatalf("row %d differs", i)
		}
	}
	if pruned.SkippedBaskets() == 0 {
		t.Fatal("expected at least one skipped basket")
	}
}

func TestPruneValidation(t *testing.T) {
	tree, tab := sortedRootFile(t, 10, 5)
	if _, err := NewRootScanPruned(tree, tab, []int{0}, false, 0,
		&Prune{Col: 7, Op: exec.Lt}); err == nil {
		t.Fatal("expected out-of-range prune column error")
	}
}

func TestRangeExcluded(t *testing.T) {
	// Exhaustive check of the exclusion predicate against brute force over a
	// small domain.
	ops := []exec.CmpOp{exec.Lt, exec.Le, exec.Gt, exec.Ge, exec.Eq, exec.Ne}
	match := func(v, lit int64, op exec.CmpOp) bool {
		switch op {
		case exec.Lt:
			return v < lit
		case exec.Le:
			return v <= lit
		case exec.Gt:
			return v > lit
		case exec.Ge:
			return v >= lit
		case exec.Eq:
			return v == lit
		default:
			return v != lit
		}
	}
	for lo := int64(-3); lo <= 3; lo++ {
		for hi := lo; hi <= 3; hi++ {
			for lit := int64(-4); lit <= 4; lit++ {
				for _, op := range ops {
					any := false
					for v := lo; v <= hi; v++ {
						if match(v, lit, op) {
							any = true
							break
						}
					}
					if got := intRangeExcluded(lo, hi, lit, op); got == any {
						t.Fatalf("intRangeExcluded(%d,%d,%d,%s) = %v but matchable=%v",
							lo, hi, lit, op, got, any)
					}
					if got := floatRangeExcluded(float64(lo), float64(hi), float64(lit), op); got == any {
						t.Fatalf("floatRangeExcluded(%d,%d,%d,%s) = %v but matchable=%v",
							lo, hi, lit, op, got, any)
					}
				}
			}
		}
	}
}
