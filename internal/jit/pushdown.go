package jit

import (
	"fmt"

	"rawdb/internal/catalog"
	"rawdb/internal/exec"
	"rawdb/internal/synopsis"
	"rawdb/internal/vector"
)

// Pushdown carries the per-query extras a generated access path can absorb
// beyond plain column materialisation. All fields are optional; the zero
// value generates exactly the access path the plain constructors do.
type Pushdown struct {
	// Preds are conjunctive predicates on columns of the scan's Need set
	// (Col = schema column index). Sequential scans inline the checks into
	// the per-row step chain and short-circuit the rest of the row when one
	// fails; vectorized (via-map/direct) scans read predicate columns first,
	// evaluate the conjunction over the batch, and either read the remaining
	// columns selectively under a selection vector or skip the batch range
	// entirely.
	Preds []exec.Pred
	// Syn observes parsed values into a zone-map builder as a free side
	// effect of scanning. The planner attaches accumulators only for columns
	// the generated code parses unconditionally (see DESIGN.md).
	Syn *synopsis.Builder
	// Skip reports whether rows [start, end) can produce no qualifying row
	// (a zone-map exclusion test). Consulted by via-map and direct scans
	// before decoding a batch range; advisory — surviving rows are still
	// checked by Preds or the Filter above.
	Skip func(start, end int64) bool
}

// predsFor returns the conjuncts bound to column c.
func predsFor(preds []exec.Pred, c int) []exec.Pred {
	var out []exec.Pred
	for _, p := range preds {
		if p.Col == c {
			out = append(out, p)
		}
	}
	return out
}

// validatePreds checks every predicate column is part of need and numeric.
func validatePreds(t *catalog.Table, need []int, preds []exec.Pred) error {
	for _, p := range preds {
		if p.Col < 0 || p.Col >= len(t.Schema) {
			return fmt.Errorf("jit: predicate column %d out of range", p.Col)
		}
		switch t.Schema[p.Col].Type {
		case vector.Int64, vector.Float64:
		default:
			return fmt.Errorf("jit: cannot push predicate on %s column", t.Schema[p.Col].Type)
		}
		found := false
		for _, c := range need {
			if c == p.Col {
				found = true
				break
			}
		}
		if !found {
			return fmt.Errorf("jit: pushed predicate on unread column %d", p.Col)
		}
	}
	return nil
}

// intPredTest compiles the conjuncts into one monomorphic test closure
// (resolved at generation time, like conversion functions), or nil when ps is
// empty. The single-conjunct case folds the operator and literal into the
// closure directly.
func intPredTest(ps []exec.Pred) func(int64) bool {
	switch len(ps) {
	case 0:
		return nil
	case 1:
		p := ps[0]
		lit := p.I64
		switch p.Op {
		case exec.Lt:
			return func(v int64) bool { return v < lit }
		case exec.Le:
			return func(v int64) bool { return v <= lit }
		case exec.Gt:
			return func(v int64) bool { return v > lit }
		case exec.Ge:
			return func(v int64) bool { return v >= lit }
		case exec.Eq:
			return func(v int64) bool { return v == lit }
		default:
			return func(v int64) bool { return v != lit }
		}
	default:
		return func(v int64) bool {
			for _, p := range ps {
				if !p.MatchInt64(v) {
					return false
				}
			}
			return true
		}
	}
}

// floatPredTest is the float twin of intPredTest.
func floatPredTest(ps []exec.Pred) func(float64) bool {
	switch len(ps) {
	case 0:
		return nil
	case 1:
		p := ps[0]
		lit := p.F64
		switch p.Op {
		case exec.Lt:
			return func(v float64) bool { return v < lit }
		case exec.Le:
			return func(v float64) bool { return v <= lit }
		case exec.Gt:
			return func(v float64) bool { return v > lit }
		case exec.Ge:
			return func(v float64) bool { return v >= lit }
		case exec.Eq:
			return func(v float64) bool { return v == lit }
		default:
			return func(v float64) bool { return v != lit }
		}
	default:
		return func(v float64) bool {
			for _, p := range ps {
				if !p.MatchFloat64(v) {
					return false
				}
			}
			return true
		}
	}
}

// slotPred rebinds a predicate's column to an output slot for vectorized
// evaluation over a scan's own batch.
type slotPred struct {
	slot int
	p    exec.Pred
}

// evalSlotPreds evaluates the conjunction over the first m physical rows of
// out, reusing buf. all reports that every row passed (sel is then invalid).
func evalSlotPreds(preds []slotPred, out *vector.Batch, m int, buf []int32) (sel []int32, all bool) {
	sel = exec.SelectPred(buf[:0], out.Cols[preds[0].slot], rebind(preds[0]), m)
	for _, sp := range preds[1:] {
		if len(sel) == 0 {
			break
		}
		sel = exec.RefinePred(sel, out.Cols[sp.slot], rebind(sp))
	}
	return sel, len(sel) == m
}

func rebind(sp slotPred) exec.Pred {
	p := sp.p
	p.Col = sp.slot
	return p
}

// emptySel is a non-nil empty selection: "no rows pass", as opposed to the
// nil selection meaning "all rows pass".
var emptySel = []int32{}
