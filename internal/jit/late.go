package jit

import (
	"fmt"
	"sort"

	"rawdb/internal/bytesconv"
	"rawdb/internal/catalog"
	"rawdb/internal/exec"
	"rawdb/internal/insitu"
	"rawdb/internal/posmap"
	"rawdb/internal/storage/binfile"
	"rawdb/internal/storage/csvfile"
	"rawdb/internal/storage/rootfile"
	"rawdb/internal/vector"
)

// LateScan implements column shreds: a scan operator pushed *up* the query
// plan. Its child carries a hidden row-id column listing the rows that
// survived earlier filters or joins; for each batch the LateScan reads the
// requested columns only for those rows and appends them to the batch. The
// result is that conversion and column-building costs are paid for exactly
// the shred of each column a query needs.
//
// One LateScan may fetch several columns at once — the paper's speculative
// "multi-column shreds" (Figure 9) — in which case nearby fields are
// collected in a single parsing pass per row.
type LateScan struct {
	child   exec.Operator
	ridIdx  int
	schema  vector.Schema
	fetch   func(rids []int64, outs []*vector.Vector) error
	newCols []*vector.Vector
	scratch *vector.Batch
	out     vector.Batch
}

// Schema implements exec.Operator.
func (s *LateScan) Schema() vector.Schema { return s.schema }

// Open implements exec.Operator.
func (s *LateScan) Open() error { return s.child.Open() }

// Next implements exec.Operator.
func (s *LateScan) Next() (*vector.Batch, error) {
	b, err := s.child.Next()
	if err != nil || b == nil {
		return nil, err
	}
	// Fetched columns align physically with the child's rows; densify
	// selection-vector batches so only surviving rows pay raw access.
	b = b.Compact(&s.scratch)
	for _, c := range s.newCols {
		c.Reset()
	}
	rids := b.Cols[s.ridIdx].Int64s
	if err := s.fetch(rids, s.newCols); err != nil {
		return nil, err
	}
	s.out.Cols = s.out.Cols[:0]
	s.out.Cols = append(s.out.Cols, b.Cols...)
	s.out.Cols = append(s.out.Cols, s.newCols...)
	return &s.out, nil
}

// Close implements exec.Operator.
func (s *LateScan) Close() error { return s.child.Close() }

// lateSchema builds the output schema (child schema plus fetched columns)
// and allocates the appended vectors.
func newLateScan(child exec.Operator, ridIdx int, t *catalog.Table, cols []int) (*LateScan, error) {
	cs := child.Schema()
	if ridIdx < 0 || ridIdx >= len(cs) || cs[ridIdx].Type != vector.Int64 ||
		cs[ridIdx].Name != insitu.RowIDColumn {
		return nil, fmt.Errorf("jit: late scan: column %d of child is not the hidden row-id column", ridIdx)
	}
	schema := make(vector.Schema, 0, len(cs)+len(cols))
	schema = append(schema, cs...)
	s := &LateScan{child: child, ridIdx: ridIdx}
	for _, c := range cols {
		if c < 0 || c >= len(t.Schema) {
			return nil, fmt.Errorf("jit: late scan: column index %d out of range", c)
		}
		col := vector.Col{Name: t.Schema[c].Name, Type: t.Schema[c].Type}
		schema = append(schema, col)
		s.newCols = append(s.newCols, vector.New(col.Type, vector.DefaultBatchSize))
	}
	s.schema = schema
	return s, nil
}

// csvWalkTarget is one field collected during a single parsing pass.
type csvWalkTarget struct {
	col  int
	slot int
	typ  vector.Type
}

// NewCSVLateScan generates a column-shred access path over a CSV file. The
// generator groups the requested columns by the positional-map anchor they
// are reached from; each group is fetched with one parsing pass per row
// (multi-column shreds when len(cols) > 1 share an anchor).
func NewCSVLateScan(child exec.Operator, data []byte, t *catalog.Table, cols []int,
	pm *posmap.Map, ridIdx int) (*LateScan, error) {
	if t.Format != catalog.CSV {
		return nil, fmt.Errorf("jit: csv late scan got format %s", t.Format)
	}
	if pm == nil || pm.NRows() == 0 {
		return nil, fmt.Errorf("jit: csv late scan requires a populated positional map")
	}
	sorted := append([]int(nil), cols...)
	sort.Ints(sorted)
	s, err := newLateScan(child, ridIdx, t, sorted)
	if err != nil {
		return nil, err
	}
	// Group columns by anchor; resolved once at generation time.
	type group struct {
		positions []int64
		anchor    int
		targets   []csvWalkTarget
	}
	var groups []*group
	byAnchor := make(map[int]*group)
	for slot, c := range sorted {
		anchor, ok := pm.Nearest(c)
		if !ok {
			return nil, fmt.Errorf("jit: positional map cannot reach column %d", c)
		}
		g, ok := byAnchor[anchor]
		if !ok {
			g = &group{positions: pm.Positions(anchor), anchor: anchor}
			byAnchor[anchor] = g
			groups = append(groups, g)
		}
		g.targets = append(g.targets, csvWalkTarget{col: c, slot: slot, typ: t.Schema[c].Type})
	}
	s.fetch = func(rids []int64, outs []*vector.Vector) error {
		for _, g := range groups {
			positions := g.positions
			for _, rid := range rids {
				if rid < 0 || rid >= int64(len(positions)) {
					return fmt.Errorf("jit: late scan row id %d out of range", rid)
				}
				pos := int(positions[rid])
				cur := g.anchor
				for _, tg := range g.targets {
					if d := tg.col - cur; d > 0 {
						pos = csvfile.SkipFields(data, pos, d)
					}
					start, end, next := csvfile.FieldBounds(data, pos)
					switch tg.typ {
					case vector.Int64:
						outs[tg.slot].Int64s = append(outs[tg.slot].Int64s,
							bytesconv.ParseInt64Fast(data[start:end]))
					case vector.Float64:
						v, err := bytesconv.ParseFloat64(data[start:end])
						if err != nil {
							return fmt.Errorf("jit: late scan row %d col %d: %w", rid, tg.col, err)
						}
						outs[tg.slot].Float64s = append(outs[tg.slot].Float64s, v)
					default:
						return fmt.Errorf("jit: unsupported type %s", tg.typ)
					}
					pos = next
					cur = tg.col + 1
				}
			}
		}
		return nil
	}
	return s, nil
}

// NewBinLateScan generates a column-shred access path over the binary
// format: positions are computed directly from constants, no map needed.
func NewBinLateScan(child exec.Operator, r *binfile.Reader, t *catalog.Table, cols []int,
	ridIdx int) (*LateScan, error) {
	if t.Format != catalog.Binary {
		return nil, fmt.Errorf("jit: bin late scan got format %s", t.Format)
	}
	s, err := newLateScan(child, ridIdx, t, cols)
	if err != nil {
		return nil, err
	}
	types := r.Types()
	type binFetch struct {
		slot int
		fn   func(rid int64, out *vector.Vector)
	}
	var fetchers []binFetch
	for slot, c := range cols {
		if c >= len(types) {
			return nil, fmt.Errorf("jit: column index %d out of range", c)
		}
		switch types[c] {
		case vector.Int64:
			c := c
			fetchers = append(fetchers, binFetch{slot, func(rid int64, out *vector.Vector) {
				out.Int64s = append(out.Int64s, r.Int64At(rid, c))
			}})
		case vector.Float64:
			c := c
			fetchers = append(fetchers, binFetch{slot, func(rid int64, out *vector.Vector) {
				out.Float64s = append(out.Float64s, r.Float64At(rid, c))
			}})
		default:
			return nil, fmt.Errorf("jit: unsupported type %s", types[c])
		}
	}
	nrows := r.NRows()
	s.fetch = func(rids []int64, outs []*vector.Vector) error {
		for _, f := range fetchers {
			out := outs[f.slot]
			for _, rid := range rids {
				if rid < 0 || rid >= nrows {
					return fmt.Errorf("jit: late scan row id %d out of range", rid)
				}
				f.fn(rid, out)
			}
		}
		return nil
	}
	return s, nil
}

// NewRootLateScan generates a column-shred access path over the ROOT-like
// format using id-based library access ("readROOTField(fieldName, id)").
func NewRootLateScan(child exec.Operator, tree *rootfile.Tree, t *catalog.Table, cols []int,
	ridIdx int) (*LateScan, error) {
	if t.Format != catalog.Root {
		return nil, fmt.Errorf("jit: root late scan got format %s", t.Format)
	}
	s, err := newLateScan(child, ridIdx, t, cols)
	if err != nil {
		return nil, err
	}
	type rootFetch struct {
		slot int
		fn   func(rid int64, out *vector.Vector) error
	}
	var fetchers []rootFetch
	for slot, c := range cols {
		col := t.Schema[c]
		br, err := tree.Branch(col.Name)
		if err != nil {
			return nil, fmt.Errorf("jit: root late scan: %w", err)
		}
		switch col.Type {
		case vector.Int64:
			fetchers = append(fetchers, rootFetch{slot, func(rid int64, out *vector.Vector) error {
				v, err := br.Int64At(rid)
				if err != nil {
					return err
				}
				out.Int64s = append(out.Int64s, v)
				return nil
			}})
		case vector.Float64:
			fetchers = append(fetchers, rootFetch{slot, func(rid int64, out *vector.Vector) error {
				v, err := br.Float64At(rid)
				if err != nil {
					return err
				}
				out.Float64s = append(out.Float64s, v)
				return nil
			}})
		default:
			return nil, fmt.Errorf("jit: unsupported type %s", col.Type)
		}
	}
	s.fetch = func(rids []int64, outs []*vector.Vector) error {
		for _, f := range fetchers {
			out := outs[f.slot]
			for _, rid := range rids {
				if err := f.fn(rid, out); err != nil {
					return err
				}
			}
		}
		return nil
	}
	return s, nil
}

var _ exec.Operator = (*LateScan)(nil)
