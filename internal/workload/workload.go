// Package workload generates the synthetic datasets of the paper's
// evaluation and maps experiment parameters (selectivity) onto query
// constants.
//
// Two table shapes are used throughout Sections 4 and 5:
//
//   - the "narrow" table: 30 integer columns, values uniform in [0, 1e9)
//     (the paper's 100M-row / 28 GB CSV and 12 GB binary files);
//   - the "wide" table: 120 columns alternating integer and floating point
//     (the paper's 30M-row / 45 GB CSV and 14 GB binary files), where the
//     aggregated column is a float to expose conversion costs.
//
// Join experiments use a second copy of the narrow table with shuffled rows.
// Row counts are parameters here; the harness defaults to laptop scale.
package workload

import (
	"bytes"
	"fmt"
	"math/rand"

	"rawdb/internal/catalog"
	"rawdb/internal/storage/binfile"
	"rawdb/internal/storage/csvfile"
	"rawdb/internal/storage/jsonfile"
	"rawdb/internal/vector"
)

// ValueRange is the exclusive upper bound of generated integer values; the
// paper draws values "distributed randomly between 0 and 10^9".
const ValueRange = int64(1_000_000_000)

// NarrowCols is the column count of the narrow table.
const NarrowCols = 30

// WideCols is the column count of the wide table.
const WideCols = 120

// Dataset is one generated table in its raw representations. JSONL is
// populated by Narrow and Events (the generators backing the JSON adapter's
// parity tests and benchmarks); Bin by the fixed-width generators.
type Dataset struct {
	Schema []catalog.Column
	CSV    []byte
	Bin    []byte
	JSONL  []byte
	Rows   int
}

// ColumnName returns the 1-based column name used across the experiments
// ("col1" ... "colN"), matching the paper's numbering.
func ColumnName(i int) string { return fmt.Sprintf("col%d", i+1) }

// Table builds a catalog entry for the dataset's CSV representation under
// the given name (format can be overridden by the caller).
func (d *Dataset) Table(name string, format catalog.Format) *catalog.Table {
	return &catalog.Table{Name: name, Format: format, Schema: d.Schema}
}

// Narrow generates the 30-integer-column table with the given row count, in
// CSV, binary and flat JSONL form (identical rows across all three).
func Narrow(rows int, seed int64) (*Dataset, error) {
	types := make([]vector.Type, NarrowCols)
	schema := make([]catalog.Column, NarrowCols)
	fields := make([]jsonfile.Field, NarrowCols)
	for c := 0; c < NarrowCols; c++ {
		types[c] = vector.Int64
		schema[c] = catalog.Column{Name: ColumnName(c), Type: vector.Int64}
		fields[c] = jsonfile.Field{Path: ColumnName(c), Type: vector.Int64}
	}
	rng := rand.New(rand.NewSource(seed))
	var cbuf, bbuf, jbuf bytes.Buffer
	cw := csvfile.NewWriter(&cbuf, types)
	bw, err := binfile.NewWriter(&bbuf, types, int64(rows))
	if err != nil {
		return nil, err
	}
	jw, err := jsonfile.NewWriter(&jbuf, fields)
	if err != nil {
		return nil, err
	}
	row := make([]int64, NarrowCols)
	for r := 0; r < rows; r++ {
		for c := range row {
			row[c] = rng.Int63n(ValueRange)
		}
		if err := cw.WriteRow(row, nil); err != nil {
			return nil, err
		}
		if err := bw.WriteRow(row, nil); err != nil {
			return nil, err
		}
		if err := jw.WriteRow(row, nil); err != nil {
			return nil, err
		}
	}
	if err := cw.Flush(); err != nil {
		return nil, err
	}
	if err := bw.Close(); err != nil {
		return nil, err
	}
	if err := jw.Flush(); err != nil {
		return nil, err
	}
	return &Dataset{Schema: schema, CSV: cbuf.Bytes(), Bin: bbuf.Bytes(),
		JSONL: jbuf.Bytes(), Rows: rows}, nil
}

// NarrowSorted generates the narrow table with col1 strictly ascending
// (evenly spread over the value range) and every other column random — the
// clustered-key shape where zone maps exclude almost every block of a
// selective sweep.
func NarrowSorted(rows int, seed int64) (*Dataset, error) {
	types := make([]vector.Type, NarrowCols)
	schema := make([]catalog.Column, NarrowCols)
	fields := make([]jsonfile.Field, NarrowCols)
	for c := 0; c < NarrowCols; c++ {
		types[c] = vector.Int64
		schema[c] = catalog.Column{Name: ColumnName(c), Type: vector.Int64}
		fields[c] = jsonfile.Field{Path: ColumnName(c), Type: vector.Int64}
	}
	rng := rand.New(rand.NewSource(seed))
	var cbuf, bbuf, jbuf bytes.Buffer
	cw := csvfile.NewWriter(&cbuf, types)
	bw, err := binfile.NewWriter(&bbuf, types, int64(rows))
	if err != nil {
		return nil, err
	}
	jw, err := jsonfile.NewWriter(&jbuf, fields)
	if err != nil {
		return nil, err
	}
	scale := ValueRange / int64(rows)
	if scale == 0 {
		scale = 1
	}
	row := make([]int64, NarrowCols)
	for r := 0; r < rows; r++ {
		row[0] = int64(r) * scale
		for c := 1; c < NarrowCols; c++ {
			row[c] = rng.Int63n(ValueRange)
		}
		if err := cw.WriteRow(row, nil); err != nil {
			return nil, err
		}
		if err := bw.WriteRow(row, nil); err != nil {
			return nil, err
		}
		if err := jw.WriteRow(row, nil); err != nil {
			return nil, err
		}
	}
	if err := cw.Flush(); err != nil {
		return nil, err
	}
	if err := bw.Close(); err != nil {
		return nil, err
	}
	if err := jw.Flush(); err != nil {
		return nil, err
	}
	return &Dataset{Schema: schema, CSV: cbuf.Bytes(), Bin: bbuf.Bytes(),
		JSONL: jbuf.Bytes(), Rows: rows}, nil
}

// EventCols is the schema of the Events dataset: flat ids plus leaves nested
// under "payload". CSV columns carry the same dotted names, so the two
// representations hold identical rows under identical schemas.
var EventCols = []catalog.Column{
	{Name: "id", Type: vector.Int64},
	{Name: "run", Type: vector.Int64},
	{Name: "payload.energy", Type: vector.Float64},
	{Name: "payload.eta", Type: vector.Float64},
	{Name: "payload.ncells", Type: vector.Int64},
}

// Events generates a nested semi-structured dataset in JSONL and CSV form:
// one event object per row with a nested "payload" object, the workload
// shape of the JSON adapter's parity tests and demos.
func Events(rows int, seed int64) (*Dataset, error) {
	types := make([]vector.Type, len(EventCols))
	fields := make([]jsonfile.Field, len(EventCols))
	for i, c := range EventCols {
		types[i] = c.Type
		fields[i] = jsonfile.Field{Path: c.Name, Type: c.Type}
	}
	rng := rand.New(rand.NewSource(seed))
	var cbuf, jbuf bytes.Buffer
	cw := csvfile.NewWriter(&cbuf, types)
	jw, err := jsonfile.NewWriter(&jbuf, fields)
	if err != nil {
		return nil, err
	}
	for r := 0; r < rows; r++ {
		ints := []int64{int64(r), rng.Int63n(100), rng.Int63n(64)}
		floats := []float64{
			float64(rng.Int63n(ValueRange)) / 1024,
			float64(rng.Int63n(5000))/1000 - 2.5,
		}
		if err := cw.WriteRow(ints, floats); err != nil {
			return nil, err
		}
		if err := jw.WriteRow(ints, floats); err != nil {
			return nil, err
		}
	}
	if err := cw.Flush(); err != nil {
		return nil, err
	}
	if err := jw.Flush(); err != nil {
		return nil, err
	}
	return &Dataset{Schema: EventCols, CSV: cbuf.Bytes(), JSONL: jbuf.Bytes(), Rows: rows}, nil
}

// Wide generates the 120-column mixed int/float table. Odd columns (col2,
// col4, ...) are floats; col1 (the filter column) is an integer, as in the
// paper.
func Wide(rows int, seed int64) (*Dataset, error) {
	types := make([]vector.Type, WideCols)
	schema := make([]catalog.Column, WideCols)
	for c := 0; c < WideCols; c++ {
		t := vector.Int64
		if c%2 == 1 {
			t = vector.Float64
		}
		types[c] = t
		schema[c] = catalog.Column{Name: ColumnName(c), Type: t}
	}
	rng := rand.New(rand.NewSource(seed))
	var cbuf, bbuf bytes.Buffer
	cw := csvfile.NewWriter(&cbuf, types)
	bw, err := binfile.NewWriter(&bbuf, types, int64(rows))
	if err != nil {
		return nil, err
	}
	ints := make([]int64, WideCols/2)
	floats := make([]float64, WideCols/2)
	for r := 0; r < rows; r++ {
		for i := range ints {
			ints[i] = rng.Int63n(ValueRange)
			floats[i] = rng.Float64() * float64(ValueRange)
		}
		if err := cw.WriteRow(ints, floats); err != nil {
			return nil, err
		}
		if err := bw.WriteRow(ints, floats); err != nil {
			return nil, err
		}
	}
	if err := cw.Flush(); err != nil {
		return nil, err
	}
	if err := bw.Close(); err != nil {
		return nil, err
	}
	return &Dataset{Schema: schema, CSV: cbuf.Bytes(), Bin: bbuf.Bytes(), Rows: rows}, nil
}

// NarrowShuffledPair generates two narrow datasets holding the same rows,
// the second in shuffled order, for the join experiments (file2 of Figures
// 11 and 12). To keep join fan-out at one match per probe row, col1 of both
// files is a permutation of 0..rows-1 scaled into the value range.
func NarrowShuffledPair(rows int, seed int64) (file1, file2 *Dataset, err error) {
	rng := rand.New(rand.NewSource(seed))
	types := make([]vector.Type, NarrowCols)
	schema := make([]catalog.Column, NarrowCols)
	for c := 0; c < NarrowCols; c++ {
		types[c] = vector.Int64
		schema[c] = catalog.Column{Name: ColumnName(c), Type: vector.Int64}
	}
	// Materialise rows once.
	all := make([][]int64, rows)
	keys := rng.Perm(rows)
	scale := ValueRange / int64(rows)
	if scale == 0 {
		scale = 1
	}
	for r := 0; r < rows; r++ {
		row := make([]int64, NarrowCols)
		row[0] = int64(keys[r]) * scale // unique join key, uniform-ish spread
		for c := 1; c < NarrowCols; c++ {
			row[c] = rng.Int63n(ValueRange)
		}
		all[r] = row
	}
	write := func(rows [][]int64) (*Dataset, error) {
		var cbuf, bbuf bytes.Buffer
		cw := csvfile.NewWriter(&cbuf, types)
		bw, err := binfile.NewWriter(&bbuf, types, int64(len(rows)))
		if err != nil {
			return nil, err
		}
		for _, row := range rows {
			if err := cw.WriteRow(row, nil); err != nil {
				return nil, err
			}
			if err := bw.WriteRow(row, nil); err != nil {
				return nil, err
			}
		}
		if err := cw.Flush(); err != nil {
			return nil, err
		}
		if err := bw.Close(); err != nil {
			return nil, err
		}
		return &Dataset{Schema: schema, CSV: cbuf.Bytes(), Bin: bbuf.Bytes(), Rows: len(rows)}, nil
	}
	file1, err = write(all)
	if err != nil {
		return nil, nil, err
	}
	shuffled := append([][]int64(nil), all...)
	rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
	file2, err = write(shuffled)
	if err != nil {
		return nil, nil, err
	}
	return file1, file2, nil
}

// SplitRows cuts a newline-terminated text image (CSV or JSONL) into at
// most n chunks of near-equal row counts, on record boundaries. Splitting
// the CSV and JSONL renderings of the same dataset with the same n yields
// row-aligned partitions, which is how the partitioned-dataset tests and
// generators build mixed-format splits holding identical rows.
func SplitRows(data []byte, n int) [][]byte {
	total := int(csvfile.CountRows(data))
	if n < 1 {
		n = 1
	}
	if n > total {
		n = total
	}
	if n <= 1 {
		if len(data) == 0 {
			return nil
		}
		return [][]byte{data}
	}
	chunks := make([][]byte, 0, n)
	start, row := 0, 0
	next := total / n // rows before the next cut (redistributed per chunk)
	for i := 0; i < len(data); i++ {
		if data[i] != '\n' {
			continue
		}
		row++
		if len(chunks) < n-1 && row >= next {
			chunks = append(chunks, data[start:i+1])
			start = i + 1
			remainingChunks := n - len(chunks)
			next = row + (total-row)/remainingChunks
		}
	}
	if start < len(data) {
		chunks = append(chunks, data[start:])
	}
	return chunks
}

// Threshold maps a selectivity in [0, 1] onto the query constant X for
// predicates of the form "col < X" over uniform values in [0, ValueRange).
func Threshold(selectivity float64) int64 {
	if selectivity < 0 {
		selectivity = 0
	}
	if selectivity > 1 {
		selectivity = 1
	}
	return int64(selectivity * float64(ValueRange))
}

// Selectivities is the sweep grid of the paper's figures (0%..100%).
var Selectivities = []float64{0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0}
