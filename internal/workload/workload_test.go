package workload

import (
	"bytes"
	"testing"

	"rawdb/internal/bytesconv"
	"rawdb/internal/catalog"
	"rawdb/internal/storage/binfile"
	"rawdb/internal/storage/csvfile"
	"rawdb/internal/vector"
)

// TestNarrowCSVBinConsistent verifies both representations of the narrow
// dataset hold identical values, row by row.
func TestNarrowCSVBinConsistent(t *testing.T) {
	ds, err := Narrow(200, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(ds.Schema) != NarrowCols || ds.Rows != 200 {
		t.Fatalf("shape: %d cols, %d rows", len(ds.Schema), ds.Rows)
	}
	r, err := binfile.NewReader(ds.Bin)
	if err != nil {
		t.Fatal(err)
	}
	if r.NRows() != 200 {
		t.Fatalf("bin rows = %d", r.NRows())
	}
	pos := 0
	for row := int64(0); row < 200; row++ {
		for c := 0; c < NarrowCols; c++ {
			s, e, next := csvfile.FieldBounds(ds.CSV, pos)
			v, err := bytesconv.ParseInt64(ds.CSV[s:e])
			if err != nil {
				t.Fatalf("row %d col %d: %v", row, c, err)
			}
			if bv := r.Int64At(row, c); bv != v {
				t.Fatalf("row %d col %d: csv %d, bin %d", row, c, v, bv)
			}
			if v < 0 || v >= ValueRange {
				t.Fatalf("value %d outside [0, %d)", v, ValueRange)
			}
			pos = next
		}
	}
}

func TestWideShape(t *testing.T) {
	ds, err := Wide(50, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(ds.Schema) != WideCols {
		t.Fatalf("cols = %d", len(ds.Schema))
	}
	for c, col := range ds.Schema {
		wantType := vector.Int64
		if c%2 == 1 {
			wantType = vector.Float64
		}
		if col.Type != wantType {
			t.Fatalf("col %d type = %s", c, col.Type)
		}
	}
	if ds.Schema[0].Name != "col1" || ds.Schema[119].Name != "col120" {
		t.Fatalf("names: %s ... %s", ds.Schema[0].Name, ds.Schema[119].Name)
	}
}

func TestNarrowShuffledPair(t *testing.T) {
	f1, f2, err := NarrowShuffledPair(100, 3)
	if err != nil {
		t.Fatal(err)
	}
	r1, err := binfile.NewReader(f1.Bin)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := binfile.NewReader(f2.Bin)
	if err != nil {
		t.Fatal(err)
	}
	// col1 keys must be unique and form the same set in both files.
	set1 := map[int64]bool{}
	set2 := map[int64]bool{}
	for i := int64(0); i < 100; i++ {
		k1 := r1.Int64At(i, 0)
		if set1[k1] {
			t.Fatalf("duplicate key %d in file1", k1)
		}
		set1[k1] = true
		set2[r2.Int64At(i, 0)] = true
	}
	if len(set1) != len(set2) {
		t.Fatalf("key sets differ in size")
	}
	for k := range set1 {
		if !set2[k] {
			t.Fatalf("key %d missing from file2", k)
		}
	}
	// file2 must actually be shuffled.
	same := true
	for i := int64(0); i < 100; i++ {
		if r1.Int64At(i, 0) != r2.Int64At(i, 0) {
			same = false
			break
		}
	}
	if same {
		t.Fatal("file2 is not shuffled")
	}
}

func TestThreshold(t *testing.T) {
	if Threshold(0) != 0 || Threshold(1) != ValueRange || Threshold(0.5) != ValueRange/2 {
		t.Fatalf("thresholds: %d %d %d", Threshold(0), Threshold(1), Threshold(0.5))
	}
	if Threshold(-1) != 0 || Threshold(2) != ValueRange {
		t.Fatal("threshold clamping wrong")
	}
}

func TestDatasetTable(t *testing.T) {
	ds, err := Narrow(10, 1)
	if err != nil {
		t.Fatal(err)
	}
	tab := ds.Table("x", catalog.Binary)
	if tab.Name != "x" || tab.Format != catalog.Binary || len(tab.Schema) != NarrowCols {
		t.Fatalf("table = %+v", tab)
	}
}

func TestSplitRows(t *testing.T) {
	ds, err := Narrow(103, 5)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []int{1, 2, 4, 16, 64, 200} {
		cchunks := SplitRows(ds.CSV, n)
		jchunks := SplitRows(ds.JSONL, n)
		wantChunks := n
		if wantChunks > 103 {
			wantChunks = 103
		}
		if len(cchunks) != wantChunks || len(jchunks) != wantChunks {
			t.Fatalf("n=%d: %d CSV chunks, %d JSONL chunks, want %d",
				n, len(cchunks), len(jchunks), wantChunks)
		}
		// Chunks reassemble the original bytes exactly...
		var totalC, totalJ []byte
		for i := range cchunks {
			totalC = append(totalC, cchunks[i]...)
			totalJ = append(totalJ, jchunks[i]...)
		}
		if !bytes.Equal(totalC, ds.CSV) || !bytes.Equal(totalJ, ds.JSONL) {
			t.Fatalf("n=%d: chunks do not reassemble the input", n)
		}
		// ...and the CSV/JSONL splits are row-aligned (same rows per chunk),
		// with near-even row counts.
		total := 0
		for i := range cchunks {
			cr := int(csvfile.CountRows(cchunks[i]))
			jr := int(csvfile.CountRows(jchunks[i]))
			if cr != jr {
				t.Fatalf("n=%d chunk %d: %d CSV rows vs %d JSONL rows", n, i, cr, jr)
			}
			if cr < 103/wantChunks || cr > 103/wantChunks+1 {
				t.Fatalf("n=%d chunk %d: %d rows is uneven", n, i, cr)
			}
			total += cr
		}
		if total != 103 {
			t.Fatalf("n=%d: %d rows total", n, total)
		}
	}
	if got := SplitRows(nil, 4); got != nil {
		t.Fatalf("SplitRows(nil) = %v", got)
	}
}
