package faults

import (
	"errors"
	"io/fs"
	"testing"
	"time"
)

// install swaps in a schedule for one test and guarantees removal.
func install(t *testing.T, s *Schedule) {
	t.Helper()
	Install(s)
	t.Cleanup(Disable)
}

func TestDisabledIsNoOp(t *testing.T) {
	Disable()
	if Enabled() {
		t.Fatal("Enabled() with no schedule installed")
	}
	if err := Hit(SiteCSVLoad); err != nil {
		t.Fatalf("Hit on disabled registry: %v", err)
	}
	data := []byte("hello")
	if got := ReadData(SiteVaultRead, data); string(got) != "hello" {
		t.Fatalf("ReadData on disabled registry modified data: %q", got)
	}
	if got := TornWrite(SiteVaultWrite, data); string(got) != "hello" {
		t.Fatalf("TornWrite on disabled registry modified data: %q", got)
	}
}

func TestErrOnNthHit(t *testing.T) {
	install(t, NewSchedule(1, Rule{Site: SiteCSVLoad, Kind: Err, After: 2, Times: 1}))
	for i := 1; i <= 5; i++ {
		err := Hit(SiteCSVLoad)
		if i == 3 {
			if !errors.Is(err, ErrInjected) {
				t.Fatalf("hit %d: want ErrInjected, got %v", i, err)
			}
		} else if err != nil {
			t.Fatalf("hit %d: unexpected error %v", i, err)
		}
	}
}

func TestEveryAndTimes(t *testing.T) {
	s := NewSchedule(1, Rule{Site: SiteVaultRead, Kind: Err, Every: 3, Times: 2})
	install(t, s)
	var fired []int
	for i := 1; i <= 10; i++ {
		if Hit(SiteVaultRead) != nil {
			fired = append(fired, i)
		}
	}
	// Fires on hits 1 and 4 (every 3rd starting at the first), then Times
	// caps it.
	if len(fired) != 2 || fired[0] != 1 || fired[1] != 4 {
		t.Fatalf("fired on hits %v, want [1 4]", fired)
	}
	if f := s.Fires(); f[0] != 2 {
		t.Fatalf("Fires() = %v, want [2]", f)
	}
}

func TestNotExist(t *testing.T) {
	install(t, NewSchedule(1, Rule{Site: SiteJSONLoad, Kind: NotExist}))
	err := Hit(SiteJSONLoad)
	if !errors.Is(err, fs.ErrNotExist) {
		t.Fatalf("want fs.ErrNotExist, got %v", err)
	}
}

func TestSiteIsolation(t *testing.T) {
	install(t, NewSchedule(1, Rule{Site: SiteCSVLoad, Kind: Err}))
	if err := Hit(SiteJSONLoad); err != nil {
		t.Fatalf("rule for %s fired at %s: %v", SiteCSVLoad, SiteJSONLoad, err)
	}
	if err := Hit(SiteCSVLoad); err == nil {
		t.Fatal("rule did not fire at its own site")
	}
}

func TestClassesCountSeparately(t *testing.T) {
	// A data rule must not consume hits from control evaluations of the same
	// site: ReadData's first call still fires an After:0 data rule even after
	// several Hit calls.
	install(t, NewSchedule(1, Rule{Site: SiteVaultRead, Kind: ShortRead, Times: 1}))
	for i := 0; i < 3; i++ {
		if err := Hit(SiteVaultRead); err != nil {
			t.Fatalf("control hit %d: %v", i, err)
		}
	}
	data := make([]byte, 100)
	if got := ReadData(SiteVaultRead, data); len(got) >= 100 {
		t.Fatalf("short read did not truncate: %d bytes", len(got))
	}
}

func TestCorruptFlipsBitsDeterministically(t *testing.T) {
	mk := func() []byte {
		b := make([]byte, 64)
		for i := range b {
			b[i] = byte(i)
		}
		return b
	}
	run := func() []byte {
		s := NewSchedule(42, Rule{Site: SiteVaultRead, Kind: Corrupt})
		Install(s)
		defer Disable()
		return ReadData(SiteVaultRead, mk())
	}
	a, b := run(), run()
	if string(a) == string(mk()) {
		t.Fatal("corruption did not modify data")
	}
	if string(a) != string(b) {
		t.Fatal("same seed produced different corruption")
	}
}

func TestTornWriteTruncates(t *testing.T) {
	install(t, NewSchedule(7, Rule{Site: SiteVaultWrite, Kind: Torn, Times: 1}))
	data := make([]byte, 100)
	if got := TornWrite(SiteVaultWrite, data); len(got) >= 100 {
		t.Fatalf("torn write did not truncate: %d bytes", len(got))
	}
	if got := TornWrite(SiteVaultWrite, data); len(got) != 100 {
		t.Fatalf("torn write fired past Times: %d bytes", len(got))
	}
}

func TestPanicKind(t *testing.T) {
	install(t, NewSchedule(1, Rule{Site: SiteExecMorsel, Kind: Panic}))
	defer func() {
		if recover() == nil {
			t.Fatal("Panic rule did not panic")
		}
	}()
	_ = Hit(SiteExecMorsel)
}

func TestHookKind(t *testing.T) {
	ran := 0
	install(t, NewSchedule(1, Rule{Site: SiteCSVLoad, Kind: Hook, Times: 2, Fn: func() { ran++ }}))
	for i := 0; i < 4; i++ {
		if err := Hit(SiteCSVLoad); err != nil {
			t.Fatalf("hook hit returned error: %v", err)
		}
	}
	if ran != 2 {
		t.Fatalf("hook ran %d times, want 2", ran)
	}
}

func TestLatencyKind(t *testing.T) {
	install(t, NewSchedule(1, Rule{Site: SiteCSVLoad, Kind: Latency, Latency: 10 * time.Millisecond, Times: 1}))
	start := time.Now()
	if err := Hit(SiteCSVLoad); err != nil {
		t.Fatalf("latency hit returned error: %v", err)
	}
	if d := time.Since(start); d < 10*time.Millisecond {
		t.Fatalf("latency hit returned after %v, want >= 10ms", d)
	}
}

func TestParseSpec(t *testing.T) {
	s, err := ParseSpec("vault.read:corrupt:every=2; csv.load:err:after=3:times=1;exec.morsel:panic", 1)
	if err != nil {
		t.Fatalf("ParseSpec: %v", err)
	}
	if len(s.rules) != 3 {
		t.Fatalf("parsed %d rules, want 3", len(s.rules))
	}
	r := s.rules[1]
	if r.Site != "csv.load" || r.Kind != Err || r.After != 3 || r.Times != 1 {
		t.Fatalf("rule 1 parsed as %+v", r.Rule)
	}
	if s.rules[0].Every != 2 || s.rules[0].Kind != Corrupt {
		t.Fatalf("rule 0 parsed as %+v", s.rules[0].Rule)
	}
	if s.rules[2].Kind != Panic {
		t.Fatalf("rule 2 parsed as %+v", s.rules[2].Rule)
	}
	for _, bad := range []string{"", "justasite", "x:nope", "x:err:after", "x:err:after=-1", "x:err:what=3"} {
		if _, err := ParseSpec(bad, 1); err == nil {
			t.Errorf("ParseSpec(%q) accepted invalid spec", bad)
		}
	}
	if _, err := ParseSpec("x:latency:ms=5", 1); err != nil {
		t.Errorf("ParseSpec latency ms: %v", err)
	}
}
