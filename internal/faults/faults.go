// Package faults is a deterministic, schedule-driven failpoint registry for
// chaos testing the engine's degradation paths. Production code threads
// named sites through its file-access seams (raw-file loads, vault reads and
// writes, dataset stats, morsel workers); a test or an operator installs a
// Schedule that fires faults — injected errors, ENOENT, short reads, bit-flip
// corruption, torn writes, latency, panics — on chosen hits of chosen sites.
//
// The registry is process-global behind one atomic pointer: with no schedule
// installed every hook is a single atomic load and an immediate return, so
// the seams cost nothing measurable in production. Schedules are seeded, and
// rules trigger by per-site hit counts ("fail the 3rd vault read", "corrupt
// every 2nd entry"), so a given schedule over a serial workload reproduces
// byte-identically.
//
// Faults split into three classes, each consulted by a different hook so one
// seam pass advances each rule's counter exactly once:
//
//   - control faults (Err, NotExist, Latency, Panic, Hook) via Hit, placed
//     before the real operation;
//   - data faults (ShortRead, Corrupt) via ReadData, transforming the bytes a
//     read returned;
//   - write faults (Torn) via TornWrite, truncating the bytes about to be
//     published (simulating the post-crash torn entry an fsync-less rename
//     can leave behind).
package faults

import (
	"errors"
	"fmt"
	"io/fs"
	"math/rand"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Kind is the effect a rule injects when it fires.
type Kind uint8

// Fault kinds.
const (
	// Err returns ErrInjected from the site.
	Err Kind = iota
	// NotExist returns an error wrapping fs.ErrNotExist, indistinguishable
	// (via errors.Is) from the backing file having vanished.
	NotExist
	// ShortRead truncates the bytes a read returned to a seeded fraction.
	ShortRead
	// Corrupt flips a few seeded bits in the bytes a read returned.
	Corrupt
	// Torn truncates the bytes about to be written, without an error: the
	// write "succeeds" but publishes a torn entry.
	Torn
	// Latency sleeps for the rule's Latency before the operation proceeds.
	Latency
	// Panic panics at the site (exercising the engine's recovery paths).
	Panic
	// Hook invokes the rule's Fn at the site — the deterministic stand-in
	// for "the file changed right here" in mid-query mutation tests.
	Hook
)

// String returns the spec label of the kind.
func (k Kind) String() string {
	switch k {
	case Err:
		return "err"
	case NotExist:
		return "notexist"
	case ShortRead:
		return "shortread"
	case Corrupt:
		return "corrupt"
	case Torn:
		return "torn"
	case Latency:
		return "latency"
	case Panic:
		return "panic"
	case Hook:
		return "hook"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// class buckets kinds by the hook that evaluates them, so each rule's hit
// counter advances exactly once per seam pass.
type class uint8

const (
	classControl class = iota // Hit
	classData                 // ReadData
	classWrite                // TornWrite
)

func (k Kind) class() class {
	switch k {
	case ShortRead, Corrupt:
		return classData
	case Torn:
		return classWrite
	default:
		return classControl
	}
}

// ErrInjected is the error Err-kind rules return (wrapped with site context
// by the seams).
var ErrInjected = errors.New("injected fault")

// Sites instrumented by the engine. A Rule's Site must match exactly.
const (
	SiteCSVLoad     = "csv.load"     // csvfile.Load (raw CSV files, incl. dataset partitions)
	SiteJSONLoad    = "json.load"    // jsonfile.Load (raw JSONL files)
	SiteVaultRead   = "vault.read"   // vault.Store.ReadEntry (cached structures)
	SiteVaultWrite  = "vault.write"  // vault.Store.WriteEntry (structure publication)
	SiteDatasetStat = "dataset.stat" // dataset.Discover (manifest refresh)
	SiteExecMorsel  = "exec.morsel"  // each morsel pipeline on the worker pool
	SiteExecSerial  = "exec.serial"  // the serial execution phase of Engine.run
)

// Rule fires a fault on chosen hits of one site. Hits are counted per rule
// (within its class, see Kind); the rule fires on hit After+1, then every
// Every-th hit after that, at most Times times.
type Rule struct {
	Site string
	Kind Kind
	// After skips the first After hits (0 fires from the first hit).
	After int
	// Every fires on every Every-th eligible hit; 0 and 1 both mean every.
	Every int
	// Times caps the total number of fires; 0 means unlimited.
	Times int
	// Latency is the injected delay for Latency-kind rules.
	Latency time.Duration
	// Fn is the callback Hook-kind rules invoke at the seam.
	Fn func()
}

type ruleState struct {
	Rule
	hits  int
	fires int
}

// fire reports whether this hit triggers the rule, advancing its counters.
func (r *ruleState) fire() bool {
	r.hits++
	if r.hits <= r.After {
		return false
	}
	every := r.Every
	if every < 1 {
		every = 1
	}
	if (r.hits-r.After-1)%every != 0 {
		return false
	}
	if r.Times > 0 && r.fires >= r.Times {
		return false
	}
	r.fires++
	return true
}

// Schedule is one installed set of rules plus the seeded randomness data
// faults draw from. Safe for concurrent use.
type Schedule struct {
	mu    sync.Mutex
	rules []*ruleState
	rng   *rand.Rand
}

// NewSchedule builds a schedule from rules; seed drives the data-fault
// randomness (truncation points, corrupted offsets).
func NewSchedule(seed int64, rules ...Rule) *Schedule {
	s := &Schedule{rng: rand.New(rand.NewSource(seed))}
	for _, r := range rules {
		s.rules = append(s.rules, &ruleState{Rule: r})
	}
	return s
}

// Fires returns how many times each rule has fired, in rule order (tests
// assert a schedule actually exercised what it meant to).
func (s *Schedule) Fires() []int {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]int, len(s.rules))
	for i, r := range s.rules {
		out[i] = r.fires
	}
	return out
}

var active atomic.Pointer[Schedule]

// observer receives a notification for every rule firing, outside the
// schedule lock. The engine installs one that relays firings into its
// lifecycle event log; nil means no one is listening.
var observer atomic.Pointer[func(site string, kind string)]

// SetObserver installs fn as the process-wide fault observer (nil removes
// it). fn is called once per rule fire with the site and the kind's spec
// label, after the schedule lock is released and before the fault's effect
// (error return, sleep, panic) reaches the seam. Like the schedule itself
// the observer is global; the last installer wins.
func SetObserver(fn func(site string, kind string)) {
	if fn == nil {
		observer.Store(nil)
		return
	}
	observer.Store(&fn)
}

// notify reports each fired rule to the observer, if one is installed.
// Callers must not hold the schedule lock.
func notify(site string, kinds []Kind) {
	if len(kinds) == 0 {
		return
	}
	fn := observer.Load()
	if fn == nil {
		return
	}
	for _, k := range kinds {
		(*fn)(site, k.String())
	}
}

// Install makes s the process-wide active schedule (nil disables injection).
// Tests sharing the process must not overlap two installed schedules.
func Install(s *Schedule) { active.Store(s) }

// Disable removes the active schedule.
func Disable() { active.Store(nil) }

// Enabled reports whether a schedule is installed.
func Enabled() bool { return active.Load() != nil }

// Hit evaluates the control-class rules of site: injected errors, ENOENT,
// latency, panics and hooks. It returns nil immediately when no schedule is
// installed. Latency sleeps, Hook runs its callback, Panic panics; Err and
// NotExist return their error (to be wrapped with site context by the seam).
func Hit(site string) error {
	s := active.Load()
	if s == nil {
		return nil
	}
	return s.hit(site)
}

func (s *Schedule) hit(site string) error {
	var sleep time.Duration
	var hooks []func()
	var doPanic bool
	var err error
	var fired []Kind
	s.mu.Lock()
	for _, r := range s.rules {
		if r.Site != site || r.Kind.class() != classControl || !r.fire() {
			continue
		}
		fired = append(fired, r.Kind)
		switch r.Kind {
		case Err:
			if err == nil {
				err = fmt.Errorf("%w (site %s, hit %d)", ErrInjected, site, r.hits)
			}
		case NotExist:
			if err == nil {
				err = fmt.Errorf("injected fault (site %s, hit %d): %w", site, r.hits, fs.ErrNotExist)
			}
		case Latency:
			sleep += r.Latency
		case Panic:
			doPanic = true
		case Hook:
			if r.Fn != nil {
				hooks = append(hooks, r.Fn)
			}
		}
	}
	s.mu.Unlock()
	// Effects run outside the lock: hooks may touch files, sleeps may be
	// long, and a panic must not leave the schedule locked. The observer is
	// told first, so even a panicking fault is logged before it fires.
	notify(site, fired)
	for _, fn := range hooks {
		fn()
	}
	if sleep > 0 {
		time.Sleep(sleep)
	}
	if doPanic {
		panic(fmt.Sprintf("faults: injected panic at %s", site))
	}
	return err
}

// ReadData evaluates the data-class rules of site against the bytes a read
// returned: ShortRead returns a truncated prefix, Corrupt flips a few bits in
// place. The input slice may be modified; callers pass freshly read buffers.
func ReadData(site string, data []byte) []byte {
	s := active.Load()
	if s == nil {
		return data
	}
	return s.readData(site, data)
}

func (s *Schedule) readData(site string, data []byte) []byte {
	var fired []Kind
	s.mu.Lock()
	for _, r := range s.rules {
		if r.Site != site || r.Kind.class() != classData || !r.fire() {
			continue
		}
		if len(data) == 0 {
			continue
		}
		fired = append(fired, r.Kind)
		switch r.Kind {
		case ShortRead:
			data = data[:s.rng.Intn(len(data))]
		case Corrupt:
			for i, n := 0, 1+s.rng.Intn(3); i < n; i++ {
				pos := s.rng.Intn(len(data))
				data[pos] ^= byte(1 << s.rng.Intn(8))
			}
		}
	}
	s.mu.Unlock()
	notify(site, fired)
	return data
}

// TornWrite evaluates the write-class rules of site against the bytes about
// to be published, returning a truncated prefix when a Torn rule fires. The
// write itself proceeds (and reports success): the torn entry is discovered
// by whoever reads it, exactly like a post-crash torn file would be.
func TornWrite(site string, data []byte) []byte {
	s := active.Load()
	if s == nil {
		return data
	}
	var fired []Kind
	s.mu.Lock()
	for _, r := range s.rules {
		if r.Site != site || r.Kind.class() != classWrite || !r.fire() {
			continue
		}
		if len(data) > 0 {
			fired = append(fired, r.Kind)
			data = data[:s.rng.Intn(len(data))]
		}
	}
	s.mu.Unlock()
	notify(site, fired)
	return data
}

// ParseSpec parses the command-line fault syntax into a schedule:
//
//	rule[;rule...]   with   rule = site:kind[:param=value...]
//
// kind is one of err, notexist, shortread, corrupt, torn, latency, panic;
// params are after=N, every=N, times=N and ms=N (latency milliseconds).
// Example: "vault.read:corrupt:every=2;csv.load:err:after=3:times=1".
func ParseSpec(spec string, seed int64) (*Schedule, error) {
	var rules []Rule
	for _, rs := range strings.Split(spec, ";") {
		rs = strings.TrimSpace(rs)
		if rs == "" {
			continue
		}
		fields := strings.Split(rs, ":")
		if len(fields) < 2 {
			return nil, fmt.Errorf("faults: rule %q: want site:kind[:param=value...]", rs)
		}
		r := Rule{Site: fields[0]}
		switch fields[1] {
		case "err":
			r.Kind = Err
		case "notexist":
			r.Kind = NotExist
		case "shortread":
			r.Kind = ShortRead
		case "corrupt":
			r.Kind = Corrupt
		case "torn":
			r.Kind = Torn
		case "latency":
			r.Kind = Latency
		case "panic":
			r.Kind = Panic
		default:
			return nil, fmt.Errorf("faults: rule %q: unknown kind %q", rs, fields[1])
		}
		for _, p := range fields[2:] {
			k, v, ok := strings.Cut(p, "=")
			if !ok {
				return nil, fmt.Errorf("faults: rule %q: parameter %q is not key=value", rs, p)
			}
			n, err := strconv.Atoi(v)
			if err != nil || n < 0 {
				return nil, fmt.Errorf("faults: rule %q: parameter %q wants a non-negative integer", rs, p)
			}
			switch k {
			case "after":
				r.After = n
			case "every":
				r.Every = n
			case "times":
				r.Times = n
			case "ms":
				r.Latency = time.Duration(n) * time.Millisecond
			default:
				return nil, fmt.Errorf("faults: rule %q: unknown parameter %q", rs, k)
			}
		}
		rules = append(rules, r)
	}
	if len(rules) == 0 {
		return nil, fmt.Errorf("faults: spec %q contains no rules", spec)
	}
	return NewSchedule(seed, rules...), nil
}
