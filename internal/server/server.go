// Package server multiplexes concurrent sessions over one shared raw engine.
//
// The engine already serialises what must be serialised (plan and publish
// phases hold per-table query locks; execution runs unlocked so read-only
// queries overlap — see internal/engine/query.go). The server's job is the
// rest of the story: admission control so a burst of sessions degrades into
// fast rejections instead of memory exhaustion, per-query deadlines and
// cancellation propagated through context, and two wire protocols (HTTP/JSON
// and a newline-delimited line protocol) that both round-trip results
// bit-exactly.
package server

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"time"

	"rawdb"
)

// ErrOverloaded is returned (and mapped to HTTP 429) when a query cannot be
// admitted: every execution slot is busy and the wait queue is full or the
// queue wait timed out. Clients should back off and retry.
var ErrOverloaded = errors.New("server: overloaded, try again later")

// Options bounds the server's concurrency. Zero values select defaults.
type Options struct {
	// MaxConcurrent is the number of queries allowed to execute at once
	// (default 8). Everything above it queues.
	MaxConcurrent int
	// MaxQueue is the number of queries allowed to wait for a slot (default
	// 64). Arrivals beyond it are rejected immediately with ErrOverloaded.
	MaxQueue int
	// QueueTimeout bounds how long an admitted-to-queue query waits for a
	// slot before being rejected with ErrOverloaded (default 5s).
	QueueTimeout time.Duration
	// QueryTimeout, when positive, is a per-query deadline applied on top of
	// whatever deadline the client requested (0 means no server-side limit).
	QueryTimeout time.Duration
	// MemoryDegrade and MemoryReject are the memory governor's pressure
	// thresholds, as fractions of the engine's unified cache budget
	// (Config.CacheBudget). When the budget's projected occupancy — current
	// bytes plus an estimate of what the query could capture — crosses
	// MemoryDegrade, the query is admitted in no-capture mode: it reuses
	// every cached structure but builds nothing new. Past MemoryReject, it
	// is refused with ErrOverloaded (HTTP 429). Zero values select 0.75 and
	// 1.5; the governor is inert when the engine runs without a budget.
	MemoryDegrade float64
	MemoryReject  float64
}

func (o Options) withDefaults() Options {
	if o.MaxConcurrent <= 0 {
		o.MaxConcurrent = 8
	}
	if o.MaxQueue <= 0 {
		o.MaxQueue = 64
	}
	if o.QueueTimeout <= 0 {
		o.QueueTimeout = 5 * time.Second
	}
	if o.MemoryDegrade <= 0 {
		o.MemoryDegrade = 0.75
	}
	if o.MemoryReject <= 0 {
		o.MemoryReject = 1.5
	}
	return o
}

// Server owns the admission controller in front of one shared engine. It is
// safe for concurrent use; every listener (HTTP, line protocol, in-process
// callers) funnels through Execute.
type Server struct {
	eng  *raw.Engine
	opts Options
	sem  chan struct{} // execution slots; buffered to MaxConcurrent

	queued     atomic.Int64 // queries waiting for a slot
	active     atomic.Int64 // queries holding a slot
	rejections atomic.Int64 // admissions refused (queue full or wait timeout)
	degraded   atomic.Int64 // queries admitted in no-capture mode
	memReject  atomic.Int64 // admissions refused by the memory governor
}

// New builds a Server over an already-populated engine. The engine stays
// owned by the caller (Close it after shutting the listeners down); several
// servers over one engine are allowed but share nothing but the engine's own
// locks. Admission gauges and the per-query latency histogram are registered
// on the engine's metrics registry, so one /metrics snapshot covers both the
// engine and the server in front of it.
func New(eng *raw.Engine, opts Options) *Server {
	s := &Server{eng: eng, opts: opts.withDefaults()}
	s.sem = make(chan struct{}, s.opts.MaxConcurrent)
	m := eng.Metrics()
	m.Gauge("server.active", s.active.Load)
	m.Gauge("server.queue", s.queued.Load)
	m.Gauge("server.rejections", s.rejections.Load)
	m.Gauge("server.degraded", s.degraded.Load)
	m.Gauge("server.mem_rejections", s.memReject.Load)
	return s
}

// Engine exposes the shared engine (for /metrics handlers and tests).
func (s *Server) Engine() *raw.Engine { return s.eng }

// Execute admits, runs, and accounts one query. The context carries the
// caller's cancellation (an HTTP disconnect, a client deadline); the server's
// own QueryTimeout is layered on top. Cancellation reaches the scan loops
// between batches, so an abandoned query stops within one batch of work and
// releases its table locks without publishing any cache structure.
func (s *Server) Execute(ctx context.Context, query string) (*raw.Result, error) {
	return s.ExecuteOpt(ctx, query, raw.Options{})
}

// ExecuteOpt is Execute with per-query option overrides (the wire protocols
// use it to honour a request's workers field).
func (s *Server) ExecuteOpt(ctx context.Context, query string, opts raw.Options) (*raw.Result, error) {
	if err := s.acquire(ctx); err != nil {
		return nil, err
	}
	s.active.Add(1)
	defer func() {
		s.active.Add(-1)
		<-s.sem
	}()
	if s.opts.QueryTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.opts.QueryTimeout)
		defer cancel()
	}
	if err := s.govern(query, &opts); err != nil {
		return nil, err
	}
	start := time.Now()
	res, err := s.eng.QueryOptCtx(ctx, query, opts)
	s.eng.Metrics().ObserveSince("server.query.ns", start)
	return res, err
}

// govern is the memory governor's admission check, running after a slot is
// held (so the estimate sees the freshest budget state). With no budget the
// engine cannot run out of structure memory — everything is uncapped by
// operator choice — and the governor stays out of the way. Under a budget,
// projected occupancy (live bytes + the query's estimated capture, as a
// fraction of capacity) picks one of three rungs: admit normally, admit in
// no-capture mode, or reject. Degraded queries still answer correctly and
// still reuse every cached structure; they just leave nothing new behind —
// load shedding that costs future latency, never availability.
func (s *Server) govern(query string, opts *raw.Options) error {
	used, capacity := s.eng.CacheBudgetUsage()
	if capacity <= 0 {
		return nil
	}
	projected := float64(used+s.eng.EstimateQueryBytes(query)) / float64(capacity)
	if projected >= s.opts.MemoryReject {
		s.memReject.Add(1)
		s.rejections.Add(1)
		return fmt.Errorf("%w (projected cache occupancy %.0f%% over budget)",
			ErrOverloaded, projected*100)
	}
	if projected >= s.opts.MemoryDegrade && (opts.NoCapture == nil || !*opts.NoCapture) {
		nc := true
		opts.NoCapture = &nc
		s.degraded.Add(1)
		s.eng.Metrics().Counter("server.degraded.count").Inc()
	}
	return nil
}

// acquire takes an execution slot: immediately if one is free, else by
// joining the bounded wait queue. A full queue or an expired queue wait is an
// ErrOverloaded rejection — the overload signal the paper's server setting
// needs so memory stays bounded when sessions outnumber slots.
func (s *Server) acquire(ctx context.Context) error {
	select {
	case s.sem <- struct{}{}:
		return nil
	default:
	}
	if s.queued.Add(1) > int64(s.opts.MaxQueue) {
		s.queued.Add(-1)
		s.rejections.Add(1)
		return ErrOverloaded
	}
	defer s.queued.Add(-1)
	timer := time.NewTimer(s.opts.QueueTimeout)
	defer timer.Stop()
	select {
	case s.sem <- struct{}{}:
		return nil
	case <-timer.C:
		s.rejections.Add(1)
		return ErrOverloaded
	case <-ctx.Done():
		return fmt.Errorf("server: query abandoned while queued: %w", ctx.Err())
	}
}
