package server

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"strconv"
	"sync"

	"rawdb/internal/vector"
)

// Line protocol: one JSON object per line in each direction, strictly
// sequential per connection — a client sends a Request line, reads exactly
// one Response line, then may send the next. Concurrency comes from opening
// many connections (a "session" is a connection), which keeps the protocol
// trivial to speak from netcat or a shell script while still exercising the
// shared engine from N sessions at once. Per-query deadlines travel in-band
// (timeout_ms); mid-query cancellation needs the richer HTTP transport.

// ServeLine accepts line-protocol connections until the listener is closed
// (it returns the listener's error then). Each connection gets its own
// goroutine; queries within a connection run one at a time.
func (s *Server) ServeLine(l net.Listener) error {
	var wg sync.WaitGroup
	defer wg.Wait()
	for {
		conn, err := l.Accept()
		if err != nil {
			return err
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			s.serveConn(conn)
		}()
	}
}

func (s *Server) serveConn(conn net.Conn) {
	defer conn.Close()
	sc := bufio.NewScanner(conn)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	w := bufio.NewWriter(conn)
	enc := json.NewEncoder(w)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var req Request
		var resp *Response
		if err := json.Unmarshal(line, &req); err != nil {
			resp = &Response{Error: "bad request: " + err.Error()}
		} else {
			resp, _ = s.serve(context.Background(), req)
		}
		if err := enc.Encode(resp); err != nil {
			return
		}
		if err := w.Flush(); err != nil {
			return
		}
	}
}

// Client speaks the line protocol. One Client is one session: queries issued
// through it are sequential (guarded by a mutex so a Client may be shared,
// though difftest opens one per simulated session).
type Client struct {
	mu   sync.Mutex
	conn net.Conn
	sc   *bufio.Scanner
	w    *bufio.Writer
}

// Dial connects a line-protocol session to addr.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	sc := bufio.NewScanner(conn)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	return &Client{conn: conn, sc: sc, w: bufio.NewWriter(conn)}, nil
}

// Query sends one request and reads its response. A Response with a non-empty
// Error field is surfaced as a Go error.
func (c *Client) Query(req Request) (*Response, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	line, err := json.Marshal(req)
	if err != nil {
		return nil, err
	}
	line = append(line, '\n')
	if _, err := c.w.Write(line); err != nil {
		return nil, err
	}
	if err := c.w.Flush(); err != nil {
		return nil, err
	}
	if !c.sc.Scan() {
		if err := c.sc.Err(); err != nil {
			return nil, err
		}
		return nil, fmt.Errorf("server: connection closed mid-query")
	}
	var resp Response
	if err := json.Unmarshal(c.sc.Bytes(), &resp); err != nil {
		return nil, err
	}
	if resp.Error != "" {
		return nil, fmt.Errorf("server: %s", resp.Error)
	}
	return &resp, nil
}

// Close ends the session.
func (c *Client) Close() error { return c.conn.Close() }

// DecodeRow parses one wire row back into engine values, keyed by the
// response's type names (see DecodeCell for the exactness argument).
func (r *Response) DecodeRow(i int) ([]any, error) {
	row := r.Rows[i]
	out := make([]any, len(row))
	for c, cell := range row {
		v, err := DecodeCell(r.Types[c], cell)
		if err != nil {
			return nil, fmt.Errorf("row %d col %d: %w", i, c, err)
		}
		out[c] = v
	}
	return out, nil
}

// Int64 decodes one cell as BIGINT, panicking on type or syntax mismatch
// (test helper).
func (r *Response) Int64(row, col int) int64 {
	if r.Types[col] != vector.Int64.String() {
		panic(fmt.Sprintf("column %d is %s, not BIGINT", col, r.Types[col]))
	}
	v, err := strconv.ParseInt(r.Rows[row][col], 10, 64)
	if err != nil {
		panic(err)
	}
	return v
}

// Float64 decodes one cell as DOUBLE, panicking on type or syntax mismatch
// (test helper).
func (r *Response) Float64(row, col int) float64 {
	if r.Types[col] != vector.Float64.String() {
		panic(fmt.Sprintf("column %d is %s, not DOUBLE", col, r.Types[col]))
	}
	v, err := strconv.ParseFloat(r.Rows[row][col], 64)
	if err != nil {
		panic(err)
	}
	return v
}
