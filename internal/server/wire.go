package server

import (
	"fmt"
	"strconv"

	"rawdb"
	"rawdb/internal/vector"
)

// Wire format. Both protocols (HTTP/JSON and the line protocol) exchange the
// same request/response objects, and every cell crosses the wire as a STRING
// paired with a column type name. JSON numbers are float64 on the floor of
// every decoder, which silently rounds int64s above 2^53 and denormalises
// float bit patterns; strings dodge that entirely. Integers are formatted in
// base 10 and floats with strconv's shortest round-trip form ('g', -1), so
// decoding with the type name reproduces the exact bits the engine computed —
// the property difftest's server mode asserts against in-process execution.

// Request is one query submission.
type Request struct {
	Query string `json:"query"`
	// TimeoutMillis, when positive, sets a client-side deadline for this
	// query; the server cancels the running plan when it expires.
	TimeoutMillis int64 `json:"timeout_ms,omitempty"`
	// Workers, when positive, overrides the engine's morsel-parallel worker
	// count for this query (<=1 forces the serial plan).
	Workers int `json:"workers,omitempty"`
}

// Response carries one query's result set or its error (never both).
type Response struct {
	Columns []string   `json:"columns,omitempty"`
	Types   []string   `json:"types,omitempty"` // BIGINT, DOUBLE, BOOLEAN, VARCHAR
	Rows    [][]string `json:"rows,omitempty"`
	Error   string     `json:"error,omitempty"`
}

// encodeResult converts an engine result into a wire response.
func encodeResult(res *raw.Result) *Response {
	out := &Response{
		Columns: append([]string(nil), res.Columns...),
		Types:   make([]string, len(res.Types)),
	}
	for i, t := range res.Types {
		out.Types[i] = t.String()
	}
	n := res.NumRows()
	out.Rows = make([][]string, n)
	for i := 0; i < n; i++ {
		row := make([]string, len(res.Columns))
		for c := range res.Columns {
			row[c] = encodeCell(res.Types[c], res, i, c)
		}
		out.Rows[i] = row
	}
	return out
}

func encodeCell(t vector.Type, res *raw.Result, row, col int) string {
	switch t {
	case vector.Int64:
		return strconv.FormatInt(res.Int64(row, col), 10)
	case vector.Float64:
		return strconv.FormatFloat(res.Float64(row, col), 'g', -1, 64)
	case vector.Bool:
		return strconv.FormatBool(res.Value(row, col).(bool))
	default: // vector.Bytes
		return fmt.Sprint(res.Value(row, col))
	}
}

// DecodeCell parses one wire cell back into its engine value using the
// column's wire type name. The round trip is exact: FormatInt/ParseInt are
// inverses over all of int64, and ParseFloat of a shortest-form 'g' string
// returns the identical float64 bits.
func DecodeCell(typeName, cell string) (any, error) {
	switch typeName {
	case "BIGINT":
		return strconv.ParseInt(cell, 10, 64)
	case "DOUBLE":
		return strconv.ParseFloat(cell, 64)
	case "BOOLEAN":
		return strconv.ParseBool(cell)
	case "VARCHAR":
		return cell, nil
	default:
		return nil, fmt.Errorf("server: unknown wire type %q", typeName)
	}
}
