package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"math/rand"
	"net"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"rawdb"
)

// testEngine builds an engine with one CSV table "t": col1 int64, col2
// float64, 2000 rows. Returns the engine and the reference values.
func testEngine(t *testing.T) (*raw.Engine, []int64, []float64) {
	t.Helper()
	rng := rand.New(rand.NewSource(42))
	var b bytes.Buffer
	ints := make([]int64, 2000)
	floats := make([]float64, 2000)
	for i := range ints {
		ints[i] = rng.Int63n(1_000_000_000)
		floats[i] = rng.Float64() * 1e6
		fmt.Fprintf(&b, "%d,%s\n", ints[i], strconvFloat(floats[i]))
	}
	eng := raw.NewEngine(raw.Config{Strategy: raw.StrategyInSitu})
	t.Cleanup(func() { eng.Close() })
	schema := []raw.Column{{Name: "col1", Type: raw.Int64}, {Name: "col2", Type: raw.Float64}}
	if err := eng.RegisterCSVData("t", b.Bytes(), schema); err != nil {
		t.Fatal(err)
	}
	return eng, ints, floats
}

func strconvFloat(f float64) string {
	return fmt.Sprintf("%.17g", f)
}

func TestWireRoundTripIsBitExact(t *testing.T) {
	eng, _, _ := testEngine(t)
	srv := New(eng, Options{})
	q := "SELECT SUM(col2), MAX(col2), COUNT(*) FROM t WHERE col1 < 700000000"
	want, err := eng.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	resp, status := srv.serve(context.Background(), Request{Query: q})
	if status != http.StatusOK {
		t.Fatalf("status = %d: %s", status, resp.Error)
	}
	if len(resp.Rows) != 1 {
		t.Fatalf("rows = %d, want 1", len(resp.Rows))
	}
	gotSum := resp.Float64(0, 0)
	if math.Float64bits(gotSum) != math.Float64bits(want.Float64(0, 0)) {
		t.Fatalf("SUM over the wire = %x, in-process = %x",
			math.Float64bits(gotSum), math.Float64bits(want.Float64(0, 0)))
	}
	if got := resp.Float64(0, 1); math.Float64bits(got) != math.Float64bits(want.Float64(0, 1)) {
		t.Fatalf("MAX over the wire = %v, in-process = %v", got, want.Float64(0, 1))
	}
	if got := resp.Int64(0, 2); got != want.Int64(0, 2) {
		t.Fatalf("COUNT over the wire = %d, in-process = %d", got, want.Int64(0, 2))
	}
	if resp.Types[0] != "DOUBLE" || resp.Types[2] != "BIGINT" {
		t.Fatalf("wire types = %v", resp.Types)
	}
}

func TestDecodeCellRoundTrip(t *testing.T) {
	for _, v := range []int64{0, 1, -1, math.MaxInt64, math.MinInt64, 1 << 60} {
		got, err := DecodeCell("BIGINT", fmt.Sprintf("%d", v))
		if err != nil || got.(int64) != v {
			t.Fatalf("BIGINT %d round-tripped to %v (%v)", v, got, err)
		}
	}
	for _, v := range []float64{0, -0.0, 1.0 / 3.0, math.Pi, 1e308, 5e-324, math.Inf(1)} {
		cell := strconv.FormatFloat(v, 'g', -1, 64) // mirror encodeCell
		got, err := DecodeCell("DOUBLE", cell)
		if err != nil || math.Float64bits(got.(float64)) != math.Float64bits(v) {
			t.Fatalf("DOUBLE %v (%q) round-tripped to %v (%v)", v, cell, got, err)
		}
	}
	if _, err := DecodeCell("NOPE", "1"); err == nil {
		t.Fatal("unknown type accepted")
	}
}

func TestHTTPEndpoint(t *testing.T) {
	eng, _, _ := testEngine(t)
	srv := New(eng, Options{})
	hs := httptest.NewServer(srv.Handler())
	defer hs.Close()

	body, _ := json.Marshal(Request{Query: "SELECT COUNT(*) FROM t"})
	resp, err := http.Post(hs.URL+"/query", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	var out Response
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out.Int64(0, 0) != 2000 {
		t.Fatalf("COUNT(*) = %s", out.Rows[0][0])
	}

	// A broken query is a 400 with the error in-band.
	body, _ = json.Marshal(Request{Query: "SELECT FROM WHERE"})
	r2, err := http.Post(hs.URL+"/query", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Body.Close()
	if r2.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad query status = %d, want 400", r2.StatusCode)
	}

	// Health and metrics endpoints answer.
	for _, path := range []string{"/healthz", "/metrics"} {
		r, err := http.Get(hs.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		r.Body.Close()
		if r.StatusCode != http.StatusOK {
			t.Fatalf("%s status = %d", path, r.StatusCode)
		}
	}
}

func TestAdmissionRejectsWhenSaturated(t *testing.T) {
	eng, _, _ := testEngine(t)
	srv := New(eng, Options{MaxConcurrent: 1, MaxQueue: 1, QueueTimeout: 30 * time.Millisecond})
	srv.sem <- struct{}{} // occupy the only slot
	defer func() { <-srv.sem }()

	// First waiter joins the queue and times out -> overloaded.
	_, err := srv.Execute(context.Background(), "SELECT COUNT(*) FROM t")
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("queued-then-timed-out err = %v, want ErrOverloaded", err)
	}
	if got := srv.rejections.Load(); got != 1 {
		t.Fatalf("rejections = %d, want 1", got)
	}

	// With the queue held full, an extra arrival is rejected immediately.
	srv.queued.Add(1) // simulate a resident waiter
	start := time.Now()
	_, err = srv.Execute(context.Background(), "SELECT COUNT(*) FROM t")
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("queue-full err = %v, want ErrOverloaded", err)
	}
	if d := time.Since(start); d > 20*time.Millisecond {
		t.Fatalf("queue-full rejection took %v; want immediate", d)
	}
	srv.queued.Add(-1)

	// The HTTP layer maps it to 429.
	resp, status := srv.serve(context.Background(), Request{Query: "SELECT COUNT(*) FROM t"})
	if status != http.StatusTooManyRequests {
		t.Fatalf("status = %d (%s), want 429", status, resp.Error)
	}
}

func TestDeadlineMapsTo504(t *testing.T) {
	eng, _, _ := testEngine(t)
	srv := New(eng, Options{})
	ctx, cancel := context.WithTimeout(context.Background(), -time.Second)
	defer cancel()
	resp, status := srv.serve(ctx, Request{Query: "SELECT COUNT(*) FROM t"})
	if status != http.StatusGatewayTimeout {
		t.Fatalf("status = %d (%s), want 504", status, resp.Error)
	}
}

func TestExecuteCancelledContext(t *testing.T) {
	eng, _, _ := testEngine(t)
	srv := New(eng, Options{})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := srv.Execute(ctx, "SELECT COUNT(*) FROM t")
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestLineProtocolSession(t *testing.T) {
	eng, _, _ := testEngine(t)
	srv := New(eng, Options{})
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go srv.ServeLine(l)

	c, err := Dial(l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	want, err := eng.Query("SELECT MAX(col2) FROM t WHERE col1 < 500000000")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ { // sequential reuse of one session
		resp, err := c.Query(Request{Query: "SELECT MAX(col2) FROM t WHERE col1 < 500000000"})
		if err != nil {
			t.Fatal(err)
		}
		if got := resp.Float64(0, 0); math.Float64bits(got) != math.Float64bits(want.Float64(0, 0)) {
			t.Fatalf("line-protocol MAX = %v, in-process = %v", got, want.Float64(0, 0))
		}
	}
	if _, err := c.Query(Request{Query: "SELECT nope FROM t"}); err == nil {
		t.Fatal("bad query over the line protocol succeeded")
	}
	// The error left the connection usable (strictly sequential protocol).
	if _, err := c.Query(Request{Query: "SELECT COUNT(*) FROM t"}); err != nil {
		t.Fatalf("session dead after an in-band error: %v", err)
	}
}

func TestConcurrentSessionsAgree(t *testing.T) {
	eng, _, _ := testEngine(t)
	srv := New(eng, Options{MaxConcurrent: 8})
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go srv.ServeLine(l)

	want, err := eng.Query("SELECT SUM(col2) FROM t WHERE col1 < 800000000")
	if err != nil {
		t.Fatal(err)
	}
	wantBits := math.Float64bits(want.Float64(0, 0))
	const sessions = 16
	var wg sync.WaitGroup
	errs := make(chan error, sessions)
	for s := 0; s < sessions; s++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c, err := Dial(l.Addr().String())
			if err != nil {
				errs <- err
				return
			}
			defer c.Close()
			for i := 0; i < 4; i++ {
				resp, err := c.Query(Request{Query: "SELECT SUM(col2) FROM t WHERE col1 < 800000000"})
				if err != nil {
					errs <- err
					return
				}
				if math.Float64bits(resp.Float64(0, 0)) != wantBits {
					errs <- fmt.Errorf("session got %s, want bits %x", resp.Rows[0][0], wantBits)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	snap := eng.Metrics().Snapshot()
	if snap["server.active"] != 0 || snap["server.queue"] != 0 {
		t.Fatalf("gauges not drained: active=%d queue=%d", snap["server.active"], snap["server.queue"])
	}
	if snap["server.query.ns.count"] < sessions {
		t.Fatalf("server.query.ns.count = %d, want >= %d", snap["server.query.ns.count"], sessions)
	}
}

func TestPrometheusEndpoint(t *testing.T) {
	eng, _, _ := testEngine(t)
	srv := New(eng, Options{})
	hs := httptest.NewServer(srv.Handler())
	defer hs.Close()

	// Run a query first so counters and histograms carry real values.
	body, _ := json.Marshal(Request{Query: "SELECT SUM(col2) FROM t WHERE col1 < 500000000"})
	r, err := http.Post(hs.URL+"/query", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	r.Body.Close()

	resp, err := http.Get(hs.URL + "/metrics?format=prom")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("content type = %q", ct)
	}
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	// The live scrape must pass the same format checker CI pipes curl output
	// through (cmd/promcheck).
	if err := raw.LintPrometheus(bytes.NewReader(data)); err != nil {
		t.Fatalf("scrape fails lint: %v\n%s", err, data)
	}
	for _, want := range []string{"rawdb_query_count", "rawdb_server_query_ns_bucket"} {
		if !bytes.Contains(data, []byte(want)) {
			t.Fatalf("scrape missing %q:\n%s", want, data)
		}
	}

	// The default text form still answers without the format parameter.
	r2, err := http.Get(hs.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Body.Close()
	plain, _ := io.ReadAll(r2.Body)
	if bytes.Contains(plain, []byte("# TYPE")) {
		t.Fatal("plain metrics view switched to prom exposition")
	}
}

func TestDebugQueriesAndHeatEndpoints(t *testing.T) {
	eng, _, _ := testEngine(t)
	srv := New(eng, Options{})
	hs := httptest.NewServer(srv.Handler())
	defer hs.Close()

	body, _ := json.Marshal(Request{Query: "SELECT MAX(col2) FROM t WHERE col1 < 500000000"})
	r, err := http.Post(hs.URL+"/query", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	r.Body.Close()

	// No query is running: the in-flight view is an empty JSON array.
	resp, err := http.Get(hs.URL + "/debug/queries")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/debug/queries status = %d", resp.StatusCode)
	}
	var inflight []raw.InflightQuery
	if err := json.NewDecoder(resp.Body).Decode(&inflight); err != nil {
		t.Fatalf("/debug/queries not JSON: %v", err)
	}
	if len(inflight) != 0 {
		t.Fatalf("idle server reports in-flight queries: %+v", inflight)
	}

	// The heat profile knows the table the query touched.
	hr, err := http.Get(hs.URL + "/debug/heat")
	if err != nil {
		t.Fatal(err)
	}
	defer hr.Body.Close()
	if hr.StatusCode != http.StatusOK {
		t.Fatalf("/debug/heat status = %d", hr.StatusCode)
	}
	var heat raw.HeatSnapshot
	if err := json.NewDecoder(hr.Body).Decode(&heat); err != nil {
		t.Fatalf("/debug/heat not JSON: %v", err)
	}
	if len(heat.Tables) != 1 || heat.Tables[0].Table != "t" || heat.Tables[0].Scans < 1 {
		t.Fatalf("heat = %+v", heat)
	}

	// Cancelling an unknown ID is a 404; a malformed ID is a 400.
	cr, err := http.Post(hs.URL+"/debug/queries/99999/cancel", "text/plain", nil)
	if err != nil {
		t.Fatal(err)
	}
	cr.Body.Close()
	if cr.StatusCode != http.StatusNotFound {
		t.Fatalf("cancel unknown id status = %d, want 404", cr.StatusCode)
	}
	br, err := http.Post(hs.URL+"/debug/queries/nope/cancel", "text/plain", nil)
	if err != nil {
		t.Fatal(err)
	}
	br.Body.Close()
	if br.StatusCode != http.StatusBadRequest {
		t.Fatalf("cancel bad id status = %d, want 400", br.StatusCode)
	}
}
