package server

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"strconv"
	"time"

	"rawdb"
)

// HTTP endpoint.
//
//	POST /query   {"query": "...", "timeout_ms": 0}  -> Response (JSON)
//	GET  /metrics  engine + server metrics snapshot; text form by default,
//	               Prometheus exposition format with ?format=prom
//	GET  /debug/queries             in-flight queries (JSON)
//	POST /debug/queries/{id}/cancel cancel one in-flight query
//	GET  /debug/heat                workload-heat profiler snapshot (JSON)
//	GET  /healthz  "ok"
//
// Status mapping: 200 success, 400 parse/plan/execute errors, 429 admission
// rejected (ErrOverloaded), 504 deadline exceeded, 499-ish client cancel is
// reported as 400 with the context error (the client is usually gone by
// then). The request context carries the client disconnect, so closing the
// connection cancels the running scan within one batch.

// Handler returns the HTTP handler for the server.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/query", s.handleQuery)
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("GET /debug/queries", s.handleInflight)
	mux.HandleFunc("POST /debug/queries/{id}/cancel", s.handleCancel)
	mux.HandleFunc("GET /debug/heat", s.handleHeat)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("ok\n"))
	})
	return mux
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	var req Request
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, &Response{Error: "bad request: " + err.Error()})
		return
	}
	resp, status := s.serve(r.Context(), req)
	writeJSON(w, status, resp)
}

// serve runs one wire request through admission and execution and maps the
// outcome to a response + HTTP status. Shared by the HTTP handler and the
// line protocol (which reports the status in-band).
func (s *Server) serve(ctx context.Context, req Request) (*Response, int) {
	if req.TimeoutMillis > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, time.Duration(req.TimeoutMillis)*time.Millisecond)
		defer cancel()
	}
	var opts raw.Options
	if req.Workers > 0 {
		opts.Parallelism = &req.Workers
	}
	res, err := s.ExecuteOpt(ctx, req.Query, opts)
	switch {
	case err == nil:
		return encodeResult(res), http.StatusOK
	case errors.Is(err, ErrOverloaded):
		return &Response{Error: err.Error()}, http.StatusTooManyRequests
	case errors.Is(err, context.DeadlineExceeded):
		return &Response{Error: err.Error()}, http.StatusGatewayTimeout
	default:
		return &Response{Error: err.Error()}, http.StatusBadRequest
	}
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.URL.Query().Get("format") == "prom" {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		raw.WritePrometheus(w, s.eng.Metrics())
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	w.Write([]byte(raw.FormatMetrics(s.eng.Metrics().Snapshot())))
}

// handleInflight serves the live query registry: one JSON object per
// currently-executing query (id, sql, phase, start, rows so far, workers).
func (s *Server) handleInflight(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(s.eng.Inflight())
}

// handleCancel cancels one in-flight query by ID, through the same context
// path a client disconnect takes. 404 when the ID is unknown or the query
// already finished.
func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	id, err := strconv.ParseInt(r.PathValue("id"), 10, 64)
	if err != nil {
		http.Error(w, "bad query id", http.StatusBadRequest)
		return
	}
	if !s.eng.CancelQuery(id) {
		http.Error(w, "no such in-flight query", http.StatusNotFound)
		return
	}
	w.Write([]byte("cancelled\n"))
}

// handleHeat serves the workload-heat profiler snapshot.
func (s *Server) handleHeat(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(s.eng.HeatSnapshot())
}

func writeJSON(w http.ResponseWriter, status int, resp *Response) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(resp)
}
