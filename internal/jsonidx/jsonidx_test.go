package jsonidx

import (
	"fmt"
	"reflect"
	"testing"
)

func TestRecordCommitLookup(t *testing.T) {
	x := New(0)
	if x.NRows() != 0 || x.Tracked("a") {
		t.Fatal("new index not empty")
	}
	rec := x.Record([]string{"a", "p.b"})
	if !reflect.DeepEqual(rec.Paths(), []string{"a", "p.b"}) {
		t.Fatalf("Paths = %v", rec.Paths())
	}
	for r := int64(0); r < 5; r++ {
		rec.AppendRow(r*100, []int64{r*100 + 5, r*100 + 20})
	}
	rec.Commit()
	if x.NRows() != 5 || x.RowStart(3) != 300 {
		t.Fatalf("rows = %d start3 = %d", x.NRows(), x.RowStart(3))
	}
	if !x.Tracked("a") || !x.Tracked("p.b") || x.Tracked("z") {
		t.Fatal("tracked set wrong")
	}
	if pos := x.Positions("p.b"); pos[4] != 420 {
		t.Fatalf("p.b positions = %v", pos)
	}
	if x.Positions("z") != nil {
		t.Fatal("untracked path returned positions")
	}
	if got := x.TrackedPaths(); !reflect.DeepEqual(got, []string{"a", "p.b"}) {
		t.Fatalf("TrackedPaths = %v", got)
	}
	if x.MemoryFootprint() != (5+5+5)*8 {
		t.Fatalf("footprint = %d", x.MemoryFootprint())
	}
}

// TestAdaptiveExtension: a second scan over known rows adds a new path
// without touching row starts; already-tracked paths are skipped.
func TestAdaptiveExtension(t *testing.T) {
	x := New(0)
	rec := x.Record([]string{"a"})
	for r := int64(0); r < 3; r++ {
		rec.AppendRow(r*10, []int64{r*10 + 2})
	}
	rec.Commit()

	rec2 := x.Record([]string{"a", "b"})
	if !reflect.DeepEqual(rec2.Paths(), []string{"b"}) {
		t.Fatalf("second recorder paths = %v", rec2.Paths())
	}
	for r := int64(0); r < 3; r++ {
		rec2.AppendRow(r*10, []int64{r*10 + 7})
	}
	rec2.Commit()
	if x.NRows() != 3 {
		t.Fatalf("rows changed: %d", x.NRows())
	}
	if pos := x.Positions("b"); pos[2] != 27 {
		t.Fatalf("b positions = %v", pos)
	}
}

// TestPartialScanDiscarded: a recorder that saw fewer rows than the file
// (errored scan) must not publish anything.
func TestPartialScanDiscarded(t *testing.T) {
	x := New(0)
	rec := x.Record([]string{"a"})
	rec.AppendRow(0, []int64{2})
	rec.AppendRow(10, []int64{12})
	rec.Commit()

	rec2 := x.Record([]string{"b"})
	rec2.AppendRow(0, []int64{5}) // only 1 of 2 rows
	rec2.Commit()
	if x.Tracked("b") {
		t.Fatal("partial path recording was committed")
	}

	// Empty first scan leaves the index unpopulated.
	y := New(0)
	y.Record([]string{"a"}).Commit()
	if y.NRows() != 0 {
		t.Fatal("empty commit populated rows")
	}
}

// TestLRUEviction: path bytes beyond the budget are evicted
// least-recently-used; recently read paths survive. Each 2-character path
// over one row accounts 2 + 8 = 10 bytes, so a 30-byte budget holds three.
func TestLRUEviction(t *testing.T) {
	x := New(30)
	commit := func(path string, val int64) {
		rec := x.Record([]string{path})
		rec.AppendRow(0, []int64{val})
		rec.Commit()
	}
	commit("p0", 0)
	commit("p1", 1)
	commit("p2", 2)
	x.Positions("p0") // touch p0: p1 becomes LRU
	commit("p3", 3)
	if x.Tracked("p1") {
		t.Fatal("LRU path p1 survived eviction")
	}
	for _, p := range []string{"p0", "p2", "p3"} {
		if !x.Tracked(p) {
			t.Fatalf("path %s evicted unexpectedly", p)
		}
	}
	// Hammer more paths: the byte budget holds.
	for i := 4; i < 10; i++ {
		commit(fmt.Sprintf("p%d", i), int64(i))
	}
	if len(x.TrackedPaths()) != 3 {
		t.Fatalf("tracked = %v", x.TrackedPaths())
	}
}

// TestByteEvictionOrder pins the eviction order of the byte-accounted LRU:
// inserting past the budget drops the least recently used paths first, and a
// single oversized path is still retained (the budget never empties the
// index below one path).
func TestByteEvictionOrder(t *testing.T) {
	x := New(30)
	commit := func(path string, val int64) {
		rec := x.Record([]string{path})
		rec.AppendRow(0, []int64{val})
		rec.Commit()
	}
	for i := 0; i < 3; i++ {
		commit(fmt.Sprintf("p%d", i), int64(i))
	}
	// Insertion order is the use order: p0 must go first, then p1.
	commit("p3", 3)
	if x.Tracked("p0") || !x.Tracked("p1") {
		t.Fatalf("first eviction not LRU: tracked = %v", x.TrackedPaths())
	}
	commit("p4", 4)
	if x.Tracked("p1") || !x.Tracked("p2") {
		t.Fatalf("second eviction not LRU: tracked = %v", x.TrackedPaths())
	}

	// A lone path larger than the whole budget survives (floor of one).
	y := New(10)
	recY := y.Record([]string{"big"})
	for r := int64(0); r < 4; r++ { // 3 + 4*8 = 35 bytes > 10
		recY.AppendRow(r*10, []int64{r*10 + 1})
	}
	recY.Commit()
	if !y.Tracked("big") {
		t.Fatal("oversized lone path evicted; index would thrash")
	}

	// Version advances on every committed mutation and eviction.
	if x.Version() == 0 {
		t.Fatal("version never advanced")
	}
}
