// Package jsonidx implements the structural index, the positional-map idea
// of NoDB/RAW (package posmap) generalized to self-describing formats: an
// index over the *structure* of a JSONL file rather than over its data.
//
// Where a CSV positional map records byte offsets of every K-th column —
// columns have fixed ordinal positions, so a nearby anchor is always useful —
// JSON objects carry their own field names and may order members freely, so
// the index instead records, per row, the byte offset of each *path a query
// actually touched* plus the offset of the row itself. Later queries over a
// tracked path jump straight to its value; queries over an untracked path
// jump to the row start, walk the object once, and record the new path's
// offsets as a side effect (adaptive population, the same
// query-work-becomes-index behaviour positional maps have). Tracked paths
// are evicted least-recently-used beyond a budget, so the index stays
// proportional to the working set of queried paths, not to the file's
// vocabulary.
package jsonidx

import (
	"sort"
	"sync"
)

// DefaultMaxBytes bounds the tracked-path offsets of one index, in bytes.
// The paper sizes positional maps by column-sampling policy; for JSON the
// path working set plays that role and a byte-accounted LRU budget keeps the
// footprint bounded and meaningful under the engine's unified cache budget
// (an entry-counted limit would let footprint scale with file size
// unchecked).
const DefaultMaxBytes = 64 << 20

// Index is the structural index of one JSONL file. The engine serialises
// queries per table, but one query's morsel workers consult the index
// concurrently, so the tracked-path table (and its LRU clock) is internally
// locked. Row starts are written exactly once — by the first committed scan,
// before any concurrent reader can exist — and are read without locking.
type Index struct {
	rows []int64 // byte offset of each row start

	mu    sync.Mutex         // guards paths, use, clock, bytes, ver
	paths map[string][]int64 // tracked path -> per-row value offsets
	use   map[string]int64   // logical access clock per path, for LRU
	clock int64
	bytes int64 // accounted bytes of tracked paths (names + offsets)
	max   int64 // byte budget for tracked paths
	ver   uint64

	// seeks counts Positions lookups that were served (observability: how
	// often queries navigated via the structural index instead of reparsing).
	seeks int64
}

// Seeks returns how many tracked-path lookups this index has served.
func (x *Index) Seeks() int64 {
	x.mu.Lock()
	defer x.mu.Unlock()
	return x.seeks
}

// NPaths returns the number of tracked paths.
func (x *Index) NPaths() int {
	x.mu.Lock()
	defer x.mu.Unlock()
	return len(x.paths)
}

// New returns an empty index; maxBytes <= 0 selects DefaultMaxBytes.
func New(maxBytes int64) *Index {
	if maxBytes <= 0 {
		maxBytes = DefaultMaxBytes
	}
	return &Index{
		paths: make(map[string][]int64),
		use:   make(map[string]int64),
		max:   maxBytes,
	}
}

// Restore reconstructs an index from its serialised parts: the row-start
// offsets and the per-path value offsets (each of length len(rows); shorter
// or longer recordings are dropped as incomplete). maxBytes <= 0 selects
// DefaultMaxBytes. It is the decode-side counterpart of the vault codec.
func Restore(rows []int64, paths map[string][]int64, maxBytes int64) *Index {
	x := New(maxBytes)
	x.rows = rows
	names := make([]string, 0, len(paths))
	for p := range paths {
		names = append(names, p)
	}
	sort.Strings(names)
	for _, p := range names {
		if len(paths[p]) != len(rows) {
			continue
		}
		x.clock++
		x.paths[p] = paths[p]
		x.use[p] = x.clock
		x.bytes += pathBytes(p, paths[p])
	}
	x.evict()
	return x
}

// pathBytes is the accounted footprint of one tracked path.
func pathBytes(name string, offs []int64) int64 {
	return int64(len(name)) + int64(len(offs))*8
}

// NRows returns the number of rows whose starts are recorded; 0 means the
// index is unpopulated and a sequential scan must run first.
func (x *Index) NRows() int64 { return int64(len(x.rows)) }

// RowStarts returns the byte offsets of every row start. The slice is shared
// and immutable once committed; callers must not modify it.
func (x *Index) RowStarts() []int64 { return x.rows }

// Version counts committed mutations of the tracked-path set. The engine's
// vault write-back uses it to detect that an index grew since the last save
// (the index mutates in place, so pointer identity is not enough).
func (x *Index) Version() uint64 {
	x.mu.Lock()
	defer x.mu.Unlock()
	return x.ver
}

// RowStart returns the byte offset of the given row.
func (x *Index) RowStart(row int64) int64 { return x.rows[row] }

// Tracked reports whether value offsets for the path are recorded.
func (x *Index) Tracked(path string) bool {
	x.mu.Lock()
	defer x.mu.Unlock()
	_, ok := x.paths[path]
	return ok
}

// TrackedPaths returns the tracked paths in sorted order.
func (x *Index) TrackedPaths() []string {
	x.mu.Lock()
	defer x.mu.Unlock()
	out := make([]string, 0, len(x.paths))
	for p := range x.paths {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

// Positions returns the per-row value offsets of a tracked path (nil if
// untracked) and marks the path recently used. The slice is shared and never
// mutated once installed; callers must not modify it.
func (x *Index) Positions(path string) []int64 {
	x.mu.Lock()
	defer x.mu.Unlock()
	offs, ok := x.paths[path]
	if !ok {
		return nil
	}
	x.clock++
	x.use[path] = x.clock
	x.seeks++
	return offs
}

// MemoryFootprint returns the approximate byte size of the stored offsets.
func (x *Index) MemoryFootprint() int64 {
	x.mu.Lock()
	defer x.mu.Unlock()
	n := int64(len(x.rows)) * 8
	for _, offs := range x.paths {
		n += int64(len(offs)) * 8
	}
	return n
}

// Merge combines per-morsel fragment indexes into one index over the whole
// file: frags[i] indexes the bytes of the morsel starting at byte offs[i],
// in file order. Row starts concatenate with their morsel offsets applied; a
// path survives only if every fragment committed a full recording for it, so
// the merged index is indistinguishable from one built by a serial scan.
// Fragments are private to their workers, so no locking is needed on them.
func Merge(frags []*Index, offs []int64, maxBytes int64) *Index {
	x := New(maxBytes)
	if len(frags) == 0 {
		return x
	}
	total := 0
	for _, f := range frags {
		total += len(f.rows)
	}
	x.rows = make([]int64, 0, total)
	for i, f := range frags {
		for _, r := range f.rows {
			x.rows = append(x.rows, r+offs[i])
		}
	}
	for _, p := range frags[0].TrackedPaths() {
		merged := make([]int64, 0, total)
		complete := true
		for i, f := range frags {
			po := f.paths[p]
			if len(po) != len(f.rows) {
				complete = false
				break
			}
			for _, o := range po {
				merged = append(merged, o+offs[i])
			}
		}
		if !complete {
			continue
		}
		x.clock++
		x.paths[p] = merged
		x.use[p] = x.clock
		x.bytes += pathBytes(p, merged)
		x.ver++
	}
	x.evict()
	return x
}

// A Recorder stages structural observations made by one scan — row starts
// and value offsets for a fixed set of paths — and installs them atomically
// when the scan completes. Scans that fail mid-file therefore never leave a
// partially populated index behind, and concurrent plan/execute interleaving
// within one query never observes half-built state.
type Recorder struct {
	x     *Index
	paths []string
	rows  []int64
	offs  [][]int64
	// firstScan is true when the index had no rows yet: the recorder is then
	// also responsible for committing row starts.
	firstScan bool
}

// Record returns a recorder staging offsets for the given paths (paths
// already tracked are skipped). Pass the paths in the order AppendRow will
// supply offsets.
func (x *Index) Record(paths []string) *Recorder {
	x.mu.Lock()
	defer x.mu.Unlock()
	r := &Recorder{x: x, firstScan: len(x.rows) == 0}
	for _, p := range paths {
		if _, tracked := x.paths[p]; tracked {
			continue
		}
		r.paths = append(r.paths, p)
		r.offs = append(r.offs, nil)
	}
	return r
}

// Paths returns the paths the recorder actually stages (tracked paths were
// dropped), in AppendRow offset order.
func (r *Recorder) Paths() []string { return r.paths }

// AppendRow stages one row: its start offset and the value offsets of the
// recorder's paths (aligned with Paths()).
func (r *Recorder) AppendRow(rowStart int64, offs []int64) {
	if r.firstScan {
		r.rows = append(r.rows, rowStart)
	}
	for i, o := range offs {
		r.offs[i] = append(r.offs[i], o)
	}
}

// AppendPathOffset stages the next row's value offset for staged path i
// (aligned with Paths()). Column-at-a-time scans that visit each path in an
// independent pass use this instead of AppendRow; Commit still verifies that
// every path saw every row.
func (r *Recorder) AppendPathOffset(i int, off int64) {
	r.offs[i] = append(r.offs[i], off)
}

// Commit installs the staged offsets into the index, evicting
// least-recently-used paths beyond the budget. It is a no-op unless the
// staged row count matches the index (guarding against partial scans, which
// includes the partial recordings row-range morsel workers stage: their
// counts never match the whole file, so concurrent commits discard safely).
func (r *Recorder) Commit() {
	x := r.x
	x.mu.Lock()
	defer x.mu.Unlock()
	if r.firstScan {
		if len(r.rows) == 0 {
			return
		}
		x.rows = r.rows
		x.ver++
	}
	n := len(x.rows)
	for i, p := range r.paths {
		if len(r.offs[i]) != n {
			continue // partial recording (e.g. errored scan): discard
		}
		if old, ok := x.paths[p]; ok {
			x.bytes -= pathBytes(p, old)
		}
		x.clock++
		x.paths[p] = r.offs[i]
		x.use[p] = x.clock
		x.bytes += pathBytes(p, r.offs[i])
		x.ver++
	}
	x.evict()
}

// evict drops least-recently-used paths until the byte budget is met,
// always retaining at least the most recently used path (dropping the whole
// working set would force rebuild loops without bounding anything useful).
func (x *Index) evict() {
	for x.bytes > x.max && len(x.paths) > 1 {
		var victim string
		var oldest int64
		first := true
		for p, t := range x.use {
			if first || t < oldest {
				victim, oldest, first = p, t, false
			}
		}
		x.bytes -= pathBytes(victim, x.paths[victim])
		delete(x.paths, victim)
		delete(x.use, victim)
		x.ver++
	}
}
