// Server mode of the differential harness: the same random queries the
// in-process modes run, but issued by N concurrent line-protocol sessions
// against one shared engine behind rawserve's Server. Every session decodes
// its wire responses and compares them against the oracle bit for bit
// (floats by bit pattern survive the all-strings wire encoding), at workers
// 1/2/8 cycling per query, at 4 and 64 sessions, and across a mid-run
// dataset file arrival: a new partition file lands in the dataset directory
// while sessions are querying, and every response must match either the
// before-oracle or the after-oracle exactly — never a sheared hybrid.
package raw_test

import (
	"fmt"
	"math"
	"math/rand"
	"net"
	"os"
	"path/filepath"
	"strconv"
	"sync"
	"testing"
	"time"

	"rawdb"
	"rawdb/internal/server"
	"rawdb/internal/workload"
)

// startLineServer wraps an engine in a Server and an in-process TCP
// listener, returning the dial address.
func startLineServer(t *testing.T, eng *raw.Engine, opts server.Options) string {
	t.Helper()
	srv := server.New(eng, opts)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	go srv.ServeLine(l)
	return l.Addr().String()
}

// checkOracleWire compares a decoded wire response against the oracle bit
// for bit. Returns false (without failing) when the shape differs, so the
// arrival test can try its second oracle; mismatched cells inside a matching
// shape always fail.
func checkOracleWire(t *testing.T, label, sql string, resp *server.Response,
	want [][]oracleCell, types []raw.Type, softShape bool) bool {
	t.Helper()
	if len(resp.Rows) != len(want) {
		if softShape {
			return false
		}
		t.Fatalf("%s: %q: %d rows, oracle %d", label, sql, len(resp.Rows), len(want))
	}
	if len(resp.Types) != len(types) {
		t.Fatalf("%s: %q: %d columns, oracle %d", label, sql, len(resp.Types), len(types))
	}
	for c, typ := range types {
		if resp.Types[c] != typ.String() {
			t.Fatalf("%s: %q: column %d wire type %s, oracle %v", label, sql, c, resp.Types[c], typ)
		}
	}
	for r := range want {
		for c := range types {
			cell := resp.Rows[r][c]
			if types[c] == raw.Float64 {
				g, err := strconv.ParseFloat(cell, 64)
				if err != nil {
					t.Fatalf("%s: %q: cell (%d,%d) %q: %v", label, sql, r, c, cell, err)
				}
				if math.Float64bits(g) != math.Float64bits(want[r][c].f) {
					if softShape {
						return false
					}
					t.Fatalf("%s: %q: cell (%d,%d) = %v (bits %x), oracle %v (bits %x)",
						label, sql, r, c, g, math.Float64bits(g), want[r][c].f, math.Float64bits(want[r][c].f))
				}
				continue
			}
			g, err := strconv.ParseInt(cell, 10, 64)
			if err != nil {
				t.Fatalf("%s: %q: cell (%d,%d) %q: %v", label, sql, r, c, cell, err)
			}
			if g != want[r][c].i {
				if softShape {
					return false
				}
				t.Fatalf("%s: %q: cell (%d,%d) = %d, oracle %d", label, sql, r, c, g, want[r][c].i)
			}
		}
	}
	return true
}

// TestDifferentialServer: N concurrent sessions over one shared engine must
// each see oracle-exact results. Sessions share tables, so concurrent
// queries race to build the same adaptive structures — any torn publication
// or sheared snapshot surfaces as an oracle mismatch on some session.
func TestDifferentialServer(t *testing.T) {
	for _, tc := range []struct {
		name     string
		sessions int
		queries  int
		strat    raw.Strategy
	}{
		{"sessions4-shreds", 4, 30, raw.StrategyShreds},
		{"sessions8-jit", 8, 20, raw.StrategyJIT},
		{"sessions64-shreds", 64, 6, raw.StrategyShreds},
	} {
		t.Run(tc.name, func(t *testing.T) {
			seed := int64(9000 + int64(tc.sessions))
			rng := rand.New(rand.NewSource(seed))
			tab := genTable(rng, 160)
			utab := genTable(rng, 40)
			ts := dtTabs{t: tab, u: utab}
			eng := raw.NewEngine(raw.Config{Strategy: tc.strat, Parallelism: 2})
			defer eng.Close()
			registerDT(t, eng, "t", tab, "csv", tab.renderCSV(), nil, nil)
			registerDT(t, eng, "u", utab, "json", nil, utab.renderJSONL(), nil)
			addr := startLineServer(t, eng, server.Options{
				MaxConcurrent: 8, MaxQueue: 2 * tc.sessions, QueueTimeout: 30 * time.Second})

			queries := make([]dtQuery, tc.queries)
			for i := range queries {
				queries[i] = genQuery(rng, ts)
			}
			workerCycle := []int{1, 2, 8}
			var wg sync.WaitGroup
			for s := 0; s < tc.sessions; s++ {
				wg.Add(1)
				go func(s int) {
					defer wg.Done()
					c, err := server.Dial(addr)
					if err != nil {
						t.Errorf("session %d: %v", s, err)
						return
					}
					defer c.Close()
					// Each session walks the shared query list from its own
					// offset, so at any instant different queries (and worker
					// counts) overlap on the same tables.
					for k := 0; k < len(queries); k++ {
						qi := (s + k) % len(queries)
						q := queries[qi]
						sql := q.SQL(ts)
						w := workerCycle[(s+qi)%len(workerCycle)]
						resp, err := c.Query(server.Request{Query: sql, Workers: w})
						if err != nil {
							t.Errorf("session %d (seed %d) query %d %q: %v", s, seed, qi, sql, err)
							return
						}
						want, types := oracle(ts, q)
						checkOracleWire(t, fmt.Sprintf("session %d (seed %d) query %d workers %d", s, seed, qi, w),
							sql, resp, want, types, false)
					}
				}(s)
			}
			wg.Wait()
			snap := eng.Metrics().Snapshot()
			if snap["server.active"] != 0 || snap["server.queue"] != 0 {
				t.Fatalf("admission gauges not drained: active=%d queue=%d",
					snap["server.active"], snap["server.queue"])
			}
		})
	}
}

// truncTable returns a view of tab limited to its first nrows rows (the
// before-arrival oracle of the dataset test).
func truncTable(tab *dtTable, nrows int) *dtTable {
	out := &dtTable{cols: tab.cols, group: tab.group, nrows: nrows,
		ints: make(map[int][]int64), floats: make(map[int][]float64)}
	for c, v := range tab.ints {
		out.ints[c] = v[:nrows]
	}
	for c, v := range tab.floats {
		out.floats[c] = v[:nrows]
	}
	return out
}

// TestDifferentialServerDatasetArrival: sessions query a directory-backed
// dataset while a new partition file arrives mid-run. Every response must
// match the before-oracle or the after-oracle exactly — a query sees the
// manifest as refreshed under its table locks, never a partially visible
// file or a structure from the wrong snapshot.
func TestDifferentialServerDatasetArrival(t *testing.T) {
	seed := int64(9900)
	rng := rand.New(rand.NewSource(seed))
	full := genTable(rng, 160)
	utab := genTable(rng, 40)
	chunks := workload.SplitRows(full.renderCSV(), 4)
	if len(chunks) != 4 {
		t.Fatalf("split produced %d chunks", len(chunks))
	}
	beforeRows := 0
	for _, c := range chunks[:3] {
		beforeRows += countLines(c)
	}
	before := truncTable(full, beforeRows)
	tsBefore := dtTabs{t: before, u: utab}
	tsAfter := dtTabs{t: full, u: utab}

	dir := t.TempDir()
	for i, c := range chunks[:3] {
		if err := os.WriteFile(filepath.Join(dir, fmt.Sprintf("part%02d.csv", i)), c, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	eng := raw.NewEngine(raw.Config{Strategy: raw.StrategyShreds})
	defer eng.Close()
	if err := eng.RegisterDataset("t", dir, full.cols); err != nil {
		t.Fatal(err)
	}
	if err := eng.RegisterJSONData("u", utab.renderJSONL(), utab.cols); err != nil {
		t.Fatal(err)
	}
	addr := startLineServer(t, eng, server.Options{MaxConcurrent: 8, QueueTimeout: 30 * time.Second})

	// Aggregate-only queries: per-row outputs would need row-order reasoning
	// across the arrival; aggregates make the two oracles unambiguous.
	queries := make([]dtQuery, 0, 24)
	for len(queries) < 24 {
		q := genQuery(rng, tsAfter)
		if q.items[0].agg != "" {
			queries = append(queries, q)
		}
	}
	const sessions = 8
	arrive := make(chan struct{})
	var once sync.Once
	var wg sync.WaitGroup
	for s := 0; s < sessions; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			c, err := server.Dial(addr)
			if err != nil {
				t.Errorf("session %d: %v", s, err)
				return
			}
			defer c.Close()
			for k := 0; k < len(queries); k++ {
				if k == len(queries)/2 {
					once.Do(func() { close(arrive) }) // signal the writer at the halfway mark
				}
				qi := (s + k) % len(queries)
				q := queries[qi]
				sql := q.SQL(tsAfter)
				w := []int{1, 2, 8}[(s+k)%3]
				resp, err := c.Query(server.Request{Query: sql, Workers: w})
				if err != nil {
					t.Errorf("session %d query %d %q: %v", s, qi, sql, err)
					return
				}
				wantB, typesB := oracle(tsBefore, q)
				if checkOracleWire(t, "", sql, resp, wantB, typesB, true) {
					continue
				}
				wantA, typesA := oracle(tsAfter, q)
				checkOracleWire(t, fmt.Sprintf("session %d query %d (neither before- nor after-oracle)", s, qi),
					sql, resp, wantA, typesA, false)
			}
		}(s)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		<-arrive
		if err := os.WriteFile(filepath.Join(dir, "part03.csv"), chunks[3], 0o644); err != nil {
			t.Errorf("arrival write: %v", err)
		}
	}()
	wg.Wait()

	// Once the arrival has settled, every session must see the full dataset.
	c, err := server.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	resp, err := c.Query(server.Request{Query: "SELECT COUNT(*) FROM t"})
	if err != nil {
		t.Fatal(err)
	}
	if got := resp.Int64(0, 0); got != int64(full.nrows) {
		t.Fatalf("post-arrival COUNT(*) = %d, want %d", got, full.nrows)
	}
}

func countLines(data []byte) int {
	n := 0
	for _, b := range data {
		if b == '\n' {
			n++
		}
	}
	return n
}
