// Benchmarks regenerating the paper's evaluation, one family per table or
// figure (see DESIGN.md for the index). Dataset sizes are laptop-scale; use
// cmd/rawbench for the full sweeps and EXPERIMENTS.md for the shape
// comparison against the published numbers.
//
// Warm benchmarks run the paper's protocol (first query builds positional
// maps) outside the timer and disable the shred cache so every iteration
// measures the same raw-data access work rather than a cache hit; the
// shred-cache effect itself is benchmarked by BenchmarkShredCacheWarm and
// the Higgs family.
package raw_test

import (
	"fmt"
	"sync"
	"testing"

	"rawdb/internal/catalog"
	"rawdb/internal/engine"
	"rawdb/internal/higgs"
	"rawdb/internal/posmap"
	"rawdb/internal/profile"
	"rawdb/internal/storage/rootfile"
	"rawdb/internal/workload"
)

const (
	benchNarrowRows = 20_000
	benchWideRows   = 5_000
	benchJoinRows   = 10_000
	benchHiggsRows  = 10_000
)

var (
	narrowOnce sync.Once
	narrowDS   *workload.Dataset
	wideOnce   sync.Once
	wideDS     *workload.Dataset
	joinOnce   sync.Once
	joinF1     *workload.Dataset
	joinF2     *workload.Dataset
	higgsOnce  sync.Once
	higgsData  *higgs.Data
	eventsOnce sync.Once
	eventsData *workload.Dataset
)

func narrow(b *testing.B) *workload.Dataset {
	b.Helper()
	narrowOnce.Do(func() {
		var err error
		narrowDS, err = workload.Narrow(benchNarrowRows, 1)
		if err != nil {
			panic(err)
		}
	})
	return narrowDS
}

func wide(b *testing.B) *workload.Dataset {
	b.Helper()
	wideOnce.Do(func() {
		var err error
		wideDS, err = workload.Wide(benchWideRows, 2)
		if err != nil {
			panic(err)
		}
	})
	return wideDS
}

func joinPair(b *testing.B) (*workload.Dataset, *workload.Dataset) {
	b.Helper()
	joinOnce.Do(func() {
		var err error
		joinF1, joinF2, err = workload.NarrowShuffledPair(benchJoinRows, 3)
		if err != nil {
			panic(err)
		}
	})
	return joinF1, joinF2
}

func eventsDS(b *testing.B) *workload.Dataset {
	b.Helper()
	eventsOnce.Do(func() {
		var err error
		eventsData, err = workload.Events(benchNarrowRows, 4)
		if err != nil {
			panic(err)
		}
	})
	return eventsData
}

func higgsDS(b *testing.B) *higgs.Data {
	b.Helper()
	higgsOnce.Do(func() {
		var err error
		higgsData, err = higgs.Generate(higgs.Params{Events: benchHiggsRows, Runs: 100, Compress: true, Seed: 7})
		if err != nil {
			panic(err)
		}
	})
	return higgsData
}

func benchEngine(b *testing.B, ds *workload.Dataset, format string, strat engine.Strategy,
	everyK int) *engine.Engine {
	b.Helper()
	e := engine.New(engine.Config{
		Strategy:          strat,
		PosMapPolicy:      posmap.Policy{EveryK: everyK},
		DisableShredCache: true,
	})
	var err error
	switch format {
	case "csv":
		err = e.RegisterCSVData("t", ds.CSV, ds.Schema)
	case "json":
		err = e.RegisterJSONData("t", ds.JSONL, ds.Schema)
	default:
		err = e.RegisterBinaryData("t", ds.Bin, ds.Schema)
	}
	if err != nil {
		b.Fatal(err)
	}
	return e
}

func mustQuery(b *testing.B, e *engine.Engine, q string) {
	b.Helper()
	if _, err := e.Query(q); err != nil {
		b.Fatal(err)
	}
}

func q1For(sel float64) string {
	return fmt.Sprintf("SELECT MAX(col1) FROM t WHERE col1 < %d", workload.Threshold(sel))
}

func q2For(sel float64) string {
	return fmt.Sprintf("SELECT MAX(col11) FROM t WHERE col1 < %d", workload.Threshold(sel))
}

// --- Figure 1a: cold first query over CSV ---------------------------------

func benchFig1aCold(b *testing.B, strat engine.Strategy) {
	ds := narrow(b)
	b.SetBytes(int64(len(ds.CSV)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e := benchEngine(b, ds, "csv", strat, 10)
		mustQuery(b, e, q1For(0.5))
	}
}

func BenchmarkFig1a_DBMS(b *testing.B)     { benchFig1aCold(b, engine.StrategyDBMS) }
func BenchmarkFig1a_External(b *testing.B) { benchFig1aCold(b, engine.StrategyExternal) }
func BenchmarkFig1a_InSitu(b *testing.B)   { benchFig1aCold(b, engine.StrategyInSitu) }
func BenchmarkFig1a_JIT(b *testing.B)      { benchFig1aCold(b, engine.StrategyJIT) }

// --- Figure 1b: warm second query over CSV --------------------------------

func benchFig1bWarm(b *testing.B, strat engine.Strategy, everyK int) {
	ds := narrow(b)
	e := benchEngine(b, ds, "csv", strat, everyK)
	mustQuery(b, e, q1For(0.4))
	q := q2For(0.4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mustQuery(b, e, q)
	}
}

func BenchmarkFig1b_DBMS(b *testing.B)       { benchFig1bWarm(b, engine.StrategyDBMS, 10) }
func BenchmarkFig1b_InSitu(b *testing.B)     { benchFig1bWarm(b, engine.StrategyInSitu, 10) }
func BenchmarkFig1b_JIT(b *testing.B)        { benchFig1bWarm(b, engine.StrategyJIT, 10) }
func BenchmarkFig1b_InSituCol7(b *testing.B) { benchFig1bWarm(b, engine.StrategyInSitu, 7) }
func BenchmarkFig1b_JITCol7(b *testing.B)    { benchFig1bWarm(b, engine.StrategyJIT, 7) }

// --- Figure 2: warm second query over binary ------------------------------

func benchFig2(b *testing.B, strat engine.Strategy) {
	ds := narrow(b)
	e := benchEngine(b, ds, "bin", strat, 10)
	mustQuery(b, e, q1For(0.4))
	q := q2For(0.4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mustQuery(b, e, q)
	}
}

func BenchmarkFig2_InSitu(b *testing.B) { benchFig2(b, engine.StrategyInSitu) }
func BenchmarkFig2_JIT(b *testing.B)    { benchFig2(b, engine.StrategyJIT) }
func BenchmarkFig2_DBMS(b *testing.B)   { benchFig2(b, engine.StrategyDBMS) }

// --- Figure 3: scan cost profiles ------------------------------------------

func BenchmarkFig3_GenericScan(b *testing.B) {
	ds := narrow(b)
	tab := ds.Table("t", catalog.CSV)
	b.SetBytes(int64(len(ds.CSV)))
	for i := 0; i < b.N; i++ {
		if _, err := profile.GenericCSV(ds.CSV, tab, []int{0}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig3_JITScan(b *testing.B) {
	ds := narrow(b)
	tab := ds.Table("t", catalog.CSV)
	b.SetBytes(int64(len(ds.CSV)))
	for i := 0; i < b.N; i++ {
		if _, err := profile.JITCSV(ds.CSV, tab, []int{0}); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Figures 5/6: full vs shredded columns --------------------------------

func benchFullVsShreds(b *testing.B, format string, strat engine.Strategy, sel float64) {
	ds := narrow(b)
	e := benchEngine(b, ds, format, strat, 10)
	mustQuery(b, e, q1For(sel))
	q := q2For(sel)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mustQuery(b, e, q)
	}
}

func BenchmarkFig5_CSV_Full_Sel10(b *testing.B) {
	benchFullVsShreds(b, "csv", engine.StrategyJIT, 0.1)
}
func BenchmarkFig5_CSV_Shreds_Sel10(b *testing.B) {
	benchFullVsShreds(b, "csv", engine.StrategyShreds, 0.1)
}
func BenchmarkFig5_CSV_Full_Sel90(b *testing.B) {
	benchFullVsShreds(b, "csv", engine.StrategyJIT, 0.9)
}
func BenchmarkFig5_CSV_Shreds_Sel90(b *testing.B) {
	benchFullVsShreds(b, "csv", engine.StrategyShreds, 0.9)
}
func BenchmarkFig6_Bin_Full_Sel10(b *testing.B) {
	benchFullVsShreds(b, "bin", engine.StrategyJIT, 0.1)
}
func BenchmarkFig6_Bin_Shreds_Sel10(b *testing.B) {
	benchFullVsShreds(b, "bin", engine.StrategyShreds, 0.1)
}

// --- Table 2 / Figures 7-8: wide table ------------------------------------

func benchTable2(b *testing.B, format string, strat engine.Strategy) {
	ds := wide(b)
	q := fmt.Sprintf("SELECT MAX(col1) FROM t WHERE col1 < %d", workload.Threshold(0.5))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e := benchEngine(b, ds, format, strat, 10)
		mustQuery(b, e, q)
	}
}

func BenchmarkTable2_CSV_DBMS(b *testing.B)   { benchTable2(b, "csv", engine.StrategyDBMS) }
func BenchmarkTable2_CSV_Full(b *testing.B)   { benchTable2(b, "csv", engine.StrategyJIT) }
func BenchmarkTable2_CSV_Shreds(b *testing.B) { benchTable2(b, "csv", engine.StrategyShreds) }
func BenchmarkTable2_Bin_DBMS(b *testing.B)   { benchTable2(b, "bin", engine.StrategyDBMS) }
func BenchmarkTable2_Bin_Full(b *testing.B)   { benchTable2(b, "bin", engine.StrategyJIT) }
func BenchmarkTable2_Bin_Shreds(b *testing.B) { benchTable2(b, "bin", engine.StrategyShreds) }

func benchWideQ2(b *testing.B, format string, strat engine.Strategy) {
	ds := wide(b)
	e := benchEngine(b, ds, format, strat, 10)
	mustQuery(b, e, fmt.Sprintf("SELECT MAX(col1) FROM t WHERE col1 < %d", workload.Threshold(0.2)))
	q := fmt.Sprintf("SELECT MAX(col12) FROM t WHERE col1 < %d", workload.Threshold(0.2))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mustQuery(b, e, q)
	}
}

func BenchmarkFig7_CSV_DBMS(b *testing.B)   { benchWideQ2(b, "csv", engine.StrategyDBMS) }
func BenchmarkFig7_CSV_Full(b *testing.B)   { benchWideQ2(b, "csv", engine.StrategyJIT) }
func BenchmarkFig7_CSV_Shreds(b *testing.B) { benchWideQ2(b, "csv", engine.StrategyShreds) }
func BenchmarkFig8_Bin_DBMS(b *testing.B)   { benchWideQ2(b, "bin", engine.StrategyDBMS) }
func BenchmarkFig8_Bin_Full(b *testing.B)   { benchWideQ2(b, "bin", engine.StrategyJIT) }
func BenchmarkFig8_Bin_Shreds(b *testing.B) { benchWideQ2(b, "bin", engine.StrategyShreds) }

// --- Figure 9: multi-column shreds -----------------------------------------

func benchFig9(b *testing.B, strat engine.Strategy, multi bool) {
	ds := narrow(b)
	e := engine.New(engine.Config{
		Strategy:          strat,
		PosMapPolicy:      posmap.Policy{Extra: []int{0, 9}},
		MultiColumnShreds: multi,
		DisableShredCache: true,
	})
	if err := e.RegisterCSVData("t", ds.CSV, ds.Schema); err != nil {
		b.Fatal(err)
	}
	mustQuery(b, e, q1For(0.4))
	x := workload.Threshold(0.4)
	q := fmt.Sprintf("SELECT MAX(col6) FROM t WHERE col1 < %d AND col5 < %d", x, x)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mustQuery(b, e, q)
	}
}

func BenchmarkFig9_Full(b *testing.B)        { benchFig9(b, engine.StrategyJIT, false) }
func BenchmarkFig9_Shreds(b *testing.B)      { benchFig9(b, engine.StrategyShreds, false) }
func BenchmarkFig9_MultiShreds(b *testing.B) { benchFig9(b, engine.StrategyShreds, true) }

// --- Figures 11/12: join placements ----------------------------------------

func benchJoin(b *testing.B, aggSide int, place engine.JoinPlacement) {
	f1, f2 := joinPair(b)
	e := engine.New(engine.Config{
		Strategy:          engine.StrategyShreds,
		PosMapPolicy:      posmap.Policy{EveryK: 10},
		JoinPlacement:     place,
		DisableShredCache: true,
	})
	if err := e.RegisterCSVData("file1", f1.CSV, f1.Schema); err != nil {
		b.Fatal(err)
	}
	if err := e.RegisterCSVData("file2", f2.CSV, f2.Schema); err != nil {
		b.Fatal(err)
	}
	mustQuery(b, e, "SELECT MAX(col1) FROM file1 WHERE col1 >= 0")
	mustQuery(b, e, "SELECT MAX(col1) FROM file2 WHERE col2 >= 0")
	alias := []string{"f1", "f2"}[aggSide]
	q := fmt.Sprintf(
		"SELECT MAX(%s.col11) FROM file1 f1, file2 f2 WHERE f1.col1 = f2.col1 AND f2.col2 < %d",
		alias, workload.Threshold(0.4))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mustQuery(b, e, q)
	}
}

func BenchmarkFig11_Pipelined_Early(b *testing.B) { benchJoin(b, 0, engine.PlaceEarly) }
func BenchmarkFig11_Pipelined_Late(b *testing.B)  { benchJoin(b, 0, engine.PlaceLate) }
func BenchmarkFig12_Breaking_Early(b *testing.B)  { benchJoin(b, 1, engine.PlaceEarly) }
func BenchmarkFig12_Breaking_Intermediate(b *testing.B) {
	benchJoin(b, 1, engine.PlaceIntermediate)
}
func BenchmarkFig12_Breaking_Late(b *testing.B) { benchJoin(b, 1, engine.PlaceLate) }

// --- Table 3: Higgs ---------------------------------------------------------

func BenchmarkTable3_Handwritten_Cold(b *testing.B) {
	d := higgsDS(b)
	f, err := rootfile.Parse(d.RootImage)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		f.DropCaches()
		if _, err := higgs.Handwritten(f, d.GoodRuns); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable3_Handwritten_Warm(b *testing.B) {
	d := higgsDS(b)
	f, err := rootfile.Parse(d.RootImage)
	if err != nil {
		b.Fatal(err)
	}
	if _, err := higgs.Handwritten(f, d.GoodRuns); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := higgs.Handwritten(f, d.GoodRuns); err != nil {
			b.Fatal(err)
		}
	}
}

func higgsEngine(b *testing.B, d *higgs.Data) *engine.Engine {
	b.Helper()
	e := engine.New(engine.Config{Strategy: engine.StrategyShreds, PosMapPolicy: posmap.Policy{EveryK: 1}})
	if _, err := higgs.Register(e, d); err != nil {
		b.Fatal(err)
	}
	return e
}

func BenchmarkTable3_RAW_Cold(b *testing.B) {
	d := higgsDS(b)
	e := higgsEngine(b, d)
	for i := 0; i < b.N; i++ {
		e.DropCaches()
		if _, err := higgs.RunRAW(e); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable3_RAW_Warm(b *testing.B) {
	d := higgsDS(b)
	e := higgsEngine(b, d)
	if _, err := higgs.RunRAW(e); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := higgs.RunRAW(e); err != nil {
			b.Fatal(err)
		}
	}
}

// --- JSON adapter: cold vs warm scans against CSV on identical rows --------
//
// The narrow dataset is serialised as both CSV and flat JSONL, so each pair
// of benchmarks measures the same logical work through different raw
// formats. Cold runs a fresh engine per iteration (sequential scan, index
// construction); Warm runs the paper's protocol (first query outside the
// timer builds the positional map / structural index, shred cache disabled)
// so every iteration measures index-navigated raw access; ShredHot keeps
// the shred cache on, the fully adapted steady state.

func benchJSONCold(b *testing.B, format string) {
	ds := narrow(b)
	raw := ds.CSV
	if format == "json" {
		raw = ds.JSONL
	}
	b.SetBytes(int64(len(raw)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e := benchEngine(b, ds, format, engine.StrategyShreds, 10)
		mustQuery(b, e, q1For(0.5))
	}
}

func BenchmarkJSONAdapter_Cold_CSV(b *testing.B)  { benchJSONCold(b, "csv") }
func BenchmarkJSONAdapter_Cold_JSON(b *testing.B) { benchJSONCold(b, "json") }

func benchJSONWarm(b *testing.B, format string) {
	ds := narrow(b)
	e := benchEngine(b, ds, format, engine.StrategyShreds, 10)
	mustQuery(b, e, q1For(0.4))
	q := q2For(0.4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mustQuery(b, e, q)
	}
}

func BenchmarkJSONAdapter_Warm_CSV(b *testing.B)  { benchJSONWarm(b, "csv") }
func BenchmarkJSONAdapter_Warm_JSON(b *testing.B) { benchJSONWarm(b, "json") }

func BenchmarkJSONAdapter_ShredHot_JSON(b *testing.B) {
	ds := narrow(b)
	e := engine.New(engine.Config{Strategy: engine.StrategyShreds})
	if err := e.RegisterJSONData("t", ds.JSONL, ds.Schema); err != nil {
		b.Fatal(err)
	}
	q := q2For(0.4)
	mustQuery(b, e, q1For(0.4))
	mustQuery(b, e, q) // populate shreds
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mustQuery(b, e, q)
	}
}

// BenchmarkJSONAdapter_Nested_* isolate the cost of nested-path navigation:
// the events table reads one flat and one payload-nested column.

func BenchmarkJSONAdapter_Nested_Cold(b *testing.B) {
	ds := eventsDS(b)
	b.SetBytes(int64(len(ds.JSONL)))
	q := "SELECT MAX(payload.energy) FROM t WHERE id < 5000"
	for i := 0; i < b.N; i++ {
		e := engine.New(engine.Config{Strategy: engine.StrategyShreds, DisableShredCache: true})
		if err := e.RegisterJSONData("t", ds.JSONL, ds.Schema); err != nil {
			b.Fatal(err)
		}
		mustQuery(b, e, q)
	}
}

func BenchmarkJSONAdapter_Nested_Warm(b *testing.B) {
	ds := eventsDS(b)
	e := engine.New(engine.Config{Strategy: engine.StrategyShreds, DisableShredCache: true})
	if err := e.RegisterJSONData("t", ds.JSONL, ds.Schema); err != nil {
		b.Fatal(err)
	}
	mustQuery(b, e, "SELECT MAX(payload.energy) FROM t WHERE id < 5000")
	// Filtering on payload.eta routes it through the base via-index scan,
	// which records its offsets adaptively; the timed query then reads the
	// nested column straight from recorded offsets.
	mustQuery(b, e, "SELECT COUNT(*) FROM t WHERE payload.eta >= -1000000.0")
	q := "SELECT MAX(payload.eta) FROM t WHERE id < 5000"
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mustQuery(b, e, q)
	}
}

// --- Morsel-driven parallel scans -------------------------------------------
//
// Cold aggregate scans over the narrow table with the worker count swept:
// each iteration builds a fresh engine (no positional map, no shreds), so
// the measurement covers the tokenize/parse/convert work the morsel workers
// split. Speedup over workers=1 tracks available cores (near-linear on
// multicore hosts; ~1x when GOMAXPROCS=1).

func benchParallelScan(b *testing.B, format string, workers int) {
	ds := narrow(b)
	rawBytes := ds.CSV
	if format == "json" {
		rawBytes = ds.JSONL
	}
	q := "SELECT MIN(col1), MAX(col1), COUNT(*) FROM t WHERE col1 >= 0"
	b.SetBytes(int64(len(rawBytes)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e := engine.New(engine.Config{
			Strategy:          engine.StrategyJIT,
			PosMapPolicy:      posmap.Policy{EveryK: 10},
			Parallelism:       workers,
			DisableShredCache: true,
		})
		var err error
		if format == "csv" {
			err = e.RegisterCSVData("t", ds.CSV, ds.Schema)
		} else {
			err = e.RegisterJSONData("t", ds.JSONL, ds.Schema)
		}
		if err != nil {
			b.Fatal(err)
		}
		mustQuery(b, e, q)
	}
}

func BenchmarkParallelScanCSV(b *testing.B) {
	for _, w := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) { benchParallelScan(b, "csv", w) })
	}
}

func BenchmarkParallelScanJSON(b *testing.B) {
	for _, w := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) { benchParallelScan(b, "json", w) })
	}
}

// --- Partitioned datasets: one logical table over N raw files -------------
//
// Cold aggregate scans over the same rows split across 1/4/16 partitions
// (fresh engine per iteration), serial and at 4 workers — the worker case
// exercises the cross-partition morsel interleave, and any per-partition
// planning overhead shows up as the gap against parts=1.

func benchPartitionedScan(b *testing.B, format string, parts, workers int) {
	ds := narrow(b)
	rawBytes := ds.CSV
	if format == "json" {
		rawBytes = ds.JSONL
	}
	pf := catalog.CSV
	if format == "json" {
		pf = catalog.JSON
	}
	chunks := workload.SplitRows(rawBytes, parts)
	dparts := make([]engine.DataPart, len(chunks))
	for i, c := range chunks {
		dparts[i] = engine.DataPart{Format: pf, Data: c}
	}
	q := "SELECT MIN(col1), MAX(col1), COUNT(*) FROM t WHERE col1 >= 0"
	b.SetBytes(int64(len(rawBytes)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e := engine.New(engine.Config{
			Strategy:          engine.StrategyJIT,
			PosMapPolicy:      posmap.Policy{EveryK: 10},
			Parallelism:       workers,
			DisableShredCache: true,
		})
		if err := e.RegisterDatasetParts("t", dparts, ds.Schema); err != nil {
			b.Fatal(err)
		}
		mustQuery(b, e, q)
	}
}

func BenchmarkPartitionedScanCSV(b *testing.B) {
	for _, parts := range []int{1, 4, 16} {
		for _, w := range []int{1, 4} {
			b.Run(fmt.Sprintf("parts=%d/workers=%d", parts, w),
				func(b *testing.B) { benchPartitionedScan(b, "csv", parts, w) })
		}
	}
}

func BenchmarkPartitionedScanJSON(b *testing.B) {
	for _, parts := range []int{1, 4, 16} {
		for _, w := range []int{1, 4} {
			b.Run(fmt.Sprintf("parts=%d/workers=%d", parts, w),
				func(b *testing.B) { benchPartitionedScan(b, "json", parts, w) })
		}
	}
}

// --- Predicate pushdown: selective cold scans, absorbed vs Filter-above ----
//
// Each iteration builds a fresh engine (shred cache off: capture and in-scan
// pruning are mutually exclusive, and these benchmarks measure the pruning
// side) and runs a 1%-selectivity query reading eight output columns, so a
// failing inlined predicate short-circuits real conversion work. The off/on
// sub-benchmarks differ only in DisablePushdown/DisableZoneMaps.

func benchPushdown(b *testing.B, format string, disable bool) {
	ds := narrow(b)
	rawBytes := ds.CSV
	switch format {
	case "json":
		rawBytes = ds.JSONL
	case "bin":
		rawBytes = ds.Bin
	}
	q := fmt.Sprintf("SELECT MAX(col11), MAX(col12), MAX(col13), MAX(col14), "+
		"MAX(col15), MAX(col16), MAX(col17), MAX(col18) FROM t WHERE col1 < %d",
		workload.Threshold(0.01))
	b.SetBytes(int64(len(rawBytes)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e := engine.New(engine.Config{
			Strategy:          engine.StrategyJIT,
			PosMapPolicy:      posmap.Policy{EveryK: 10},
			DisableShredCache: true,
			DisablePushdown:   disable,
			DisableZoneMaps:   disable,
		})
		var err error
		switch format {
		case "csv":
			err = e.RegisterCSVData("t", ds.CSV, ds.Schema)
		case "json":
			err = e.RegisterJSONData("t", ds.JSONL, ds.Schema)
		default:
			err = e.RegisterBinaryData("t", ds.Bin, ds.Schema)
		}
		if err != nil {
			b.Fatal(err)
		}
		mustQuery(b, e, q)
	}
}

func BenchmarkPushdownCSV(b *testing.B) {
	b.Run("off", func(b *testing.B) { benchPushdown(b, "csv", true) })
	b.Run("on", func(b *testing.B) { benchPushdown(b, "csv", false) })
}

func BenchmarkPushdownJSON(b *testing.B) {
	b.Run("off", func(b *testing.B) { benchPushdown(b, "json", true) })
	b.Run("on", func(b *testing.B) { benchPushdown(b, "json", false) })
}

func BenchmarkPushdownBin(b *testing.B) {
	b.Run("off", func(b *testing.B) { benchPushdown(b, "bin", true) })
	b.Run("on", func(b *testing.B) { benchPushdown(b, "bin", false) })
}

// --- Shred cache: warm repeated query (the RAW warm-path effect) -----------

func BenchmarkShredCacheWarm(b *testing.B) {
	ds := narrow(b)
	e := engine.New(engine.Config{Strategy: engine.StrategyShreds, PosMapPolicy: posmap.Policy{EveryK: 10}})
	if err := e.RegisterCSVData("t", ds.CSV, ds.Schema); err != nil {
		b.Fatal(err)
	}
	q := q2For(0.4)
	mustQuery(b, e, q1For(0.4))
	mustQuery(b, e, q) // populate shreds
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mustQuery(b, e, q)
	}
}
