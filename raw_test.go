package raw_test

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"rawdb"
)

func writeCSV(t *testing.T, rows int, seed int64) (path string, vals [][]int64) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	var b strings.Builder
	vals = make([][]int64, rows)
	for r := 0; r < rows; r++ {
		row := make([]int64, 3)
		for c := range row {
			row[c] = rng.Int63n(1000)
			if c > 0 {
				b.WriteByte(',')
			}
			fmt.Fprintf(&b, "%d", row[c])
		}
		b.WriteByte('\n')
		vals[r] = row
	}
	dir := t.TempDir()
	path = filepath.Join(dir, "t.csv")
	if err := os.WriteFile(path, []byte(b.String()), 0o644); err != nil {
		t.Fatal(err)
	}
	return path, vals
}

var schema3 = []raw.Column{
	{Name: "a", Type: raw.Int64},
	{Name: "b", Type: raw.Int64},
	{Name: "c", Type: raw.Int64},
}

func TestPublicAPIQuickstart(t *testing.T) {
	path, vals := writeCSV(t, 500, 1)
	eng := raw.NewEngine(raw.Config{})
	if err := eng.RegisterCSV("t", path, schema3); err != nil {
		t.Fatal(err)
	}
	res, err := eng.Query("SELECT MAX(b), COUNT(*) FROM t WHERE a < 500")
	if err != nil {
		t.Fatal(err)
	}
	var wantMax, wantN int64
	for _, row := range vals {
		if row[0] < 500 {
			wantN++
			if row[1] > wantMax {
				wantMax = row[1]
			}
		}
	}
	if res.Int64(0, 0) != wantMax || res.Int64(0, 1) != wantN {
		t.Fatalf("got %d/%d, want %d/%d", res.Int64(0, 0), res.Int64(0, 1), wantMax, wantN)
	}
	if res.NumRows() != 1 || len(res.Columns) != 2 {
		t.Fatalf("result shape: %d rows, cols %v", res.NumRows(), res.Columns)
	}
	if res.Value(0, 0) != wantMax {
		t.Fatalf("Value = %v", res.Value(0, 0))
	}
}

func TestPublicAPIStrategiesAgree(t *testing.T) {
	path, vals := writeCSV(t, 400, 2)
	var want int64
	for _, row := range vals {
		if row[0] < 300 && row[2] > want {
			want = row[2]
		}
	}
	for _, strat := range []raw.Strategy{
		raw.StrategyShreds, raw.StrategyJIT, raw.StrategyInSitu,
		raw.StrategyExternal, raw.StrategyDBMS,
	} {
		eng := raw.NewEngine(raw.Config{Strategy: strat})
		if err := eng.RegisterCSV("t", path, schema3); err != nil {
			t.Fatal(err)
		}
		for pass := 0; pass < 2; pass++ {
			res, err := eng.Query("SELECT MAX(c) FROM t WHERE a < 300")
			if err != nil {
				t.Fatalf("%v pass %d: %v", strat, pass, err)
			}
			if res.Int64(0, 0) != want {
				t.Fatalf("%v pass %d: %d, want %d", strat, pass, res.Int64(0, 0), want)
			}
		}
	}
}

func TestPublicAPIResultStaging(t *testing.T) {
	path, _ := writeCSV(t, 300, 3)
	eng := raw.NewEngine(raw.Config{})
	if err := eng.RegisterCSV("t", path, schema3); err != nil {
		t.Fatal(err)
	}
	res, err := eng.Query("SELECT a, COUNT(*) FROM t GROUP BY a HAVING COUNT(*) >= 1")
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.RegisterResult("counts", res, []string{"a", "n"}); err != nil {
		t.Fatal(err)
	}
	res2, err := eng.Query("SELECT SUM(n) FROM counts")
	if err != nil {
		t.Fatal(err)
	}
	if res2.Int64(0, 0) != 300 {
		t.Fatalf("SUM(n) = %d, want 300", res2.Int64(0, 0))
	}
	if err := eng.DropTable("counts"); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Query("SELECT SUM(n) FROM counts"); err == nil {
		t.Fatal("dropped table should be gone")
	}
}

func TestPublicAPIExplainAndTables(t *testing.T) {
	path, _ := writeCSV(t, 50, 4)
	eng := raw.NewEngine(raw.Config{Strategy: raw.StrategyJIT})
	if err := eng.RegisterCSV("t", path, schema3); err != nil {
		t.Fatal(err)
	}
	if got := eng.Tables(); len(got) != 1 || got[0] != "t" {
		t.Fatalf("Tables = %v", got)
	}
	plan, err := eng.Explain("SELECT MAX(a) FROM t", raw.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(plan, "jit:seq(t)") {
		t.Fatalf("plan:\n%s", plan)
	}
}

func TestPublicAPIDropCaches(t *testing.T) {
	path, _ := writeCSV(t, 100, 5)
	eng := raw.NewEngine(raw.Config{})
	if err := eng.RegisterCSV("t", path, schema3); err != nil {
		t.Fatal(err)
	}
	r1, err := eng.Query("SELECT MAX(a) FROM t WHERE a >= 0")
	if err != nil {
		t.Fatal(err)
	}
	r2, _ := eng.Query("SELECT MAX(a) FROM t WHERE a >= 0")
	if r2.Stats.ShredHits == 0 {
		t.Fatal("warm query should hit the shred cache")
	}
	eng.DropCaches()
	r3, err := eng.Query("SELECT MAX(a) FROM t WHERE a >= 0")
	if err != nil {
		t.Fatal(err)
	}
	if r3.Stats.ShredHits != 0 {
		t.Fatal("cold query after DropCaches should not hit caches")
	}
	if r1.Int64(0, 0) != r3.Int64(0, 0) {
		t.Fatal("answers changed across cache drop")
	}
}

func TestPublicAPIErrors(t *testing.T) {
	eng := raw.NewEngine(raw.Config{})
	if _, err := eng.Query("SELECT MAX(a) FROM missing"); err == nil {
		t.Fatal("expected unknown-table error")
	}
	if err := eng.RegisterCSV("bad", "/nonexistent.csv", schema3); err != nil {
		t.Fatal("registration must be lazy (no file access)")
	}
	if _, err := eng.Query("SELECT MAX(a) FROM bad"); err == nil {
		t.Fatal("expected file-open error at query time")
	}
	if _, err := eng.Query("THIS IS NOT SQL"); err == nil {
		t.Fatal("expected syntax error")
	}
}
