// Package raw is a query engine that adapts itself to raw data files instead
// of loading them — a from-scratch Go implementation of "Adaptive Query
// Processing on RAW Data" (Karpathiotakis, Branco, Alagiannis, Ailamaki,
// PVLDB 7(12), 2014).
//
// Register raw files (CSV, newline-delimited JSON, fixed-width binary, or a
// ROOT-like scientific format) under table names and query them with SQL. No
// loading step occurs: the engine generates Just-In-Time access paths per
// file format and query, builds positional maps (and, for JSON, structural
// indexes over the touched field paths) as a side effect of execution, and
// caches column shreds — exactly the fragments of columns past queries
// touched — so repeated analysis approaches in-memory DBMS speed without
// ever ingesting the data.
//
//	eng := raw.NewEngine(raw.Config{})
//	_ = eng.RegisterCSV("events", "events.csv", []raw.Column{
//		{Name: "id", Type: raw.Int64},
//		{Name: "energy", Type: raw.Float64},
//	})
//	res, err := eng.Query("SELECT MAX(energy) FROM events WHERE id < 1000")
//
// JSON tables declare only the dotted paths queries touch (a partial schema,
// like ROOT tables), and those paths are usable directly in SQL:
//
//	_ = eng.RegisterJSON("hits", "hits.jsonl", []raw.Column{
//		{Name: "id", Type: raw.Int64},
//		{Name: "payload.energy", Type: raw.Float64},
//	})
//	res, err = eng.Query("SELECT MAX(payload.energy) FROM hits WHERE id < 1000")
//
// The engine also implements the paper's comparison points — a load-first
// DBMS, external tables and generic NoDB-style in-situ scans — selectable
// via Config.Strategy or per query, which is how the benchmarks in this
// repository regenerate the paper's figures.
package raw

import (
	"context"
	"io"
	"time"

	"rawdb/internal/catalog"
	"rawdb/internal/engine"
	"rawdb/internal/obs"
	"rawdb/internal/posmap"
	"rawdb/internal/storage/rootfile"
	"rawdb/internal/vector"
)

// Type identifies the type of a table column.
type Type = vector.Type

// Column types.
const (
	Int64   = vector.Int64
	Float64 = vector.Float64
	Bool    = vector.Bool
	Bytes   = vector.Bytes
)

// Column declares one field of a table schema.
type Column struct {
	Name string
	Type Type
}

// Strategy selects how queries access raw data. See the Config documentation.
type Strategy = engine.Strategy

// Strategies, from the full RAW design down to the baselines the paper
// compares against.
const (
	// StrategyShreds is RAW proper: JIT access paths plus column shreds.
	StrategyShreds = engine.StrategyShreds
	// StrategyJIT uses JIT access paths with full columns.
	StrategyJIT = engine.StrategyJIT
	// StrategyInSitu is the NoDB baseline (generic scans + positional maps).
	StrategyInSitu = engine.StrategyInSitu
	// StrategyExternal re-parses the file per query (external tables).
	StrategyExternal = engine.StrategyExternal
	// StrategyDBMS loads tables fully on first touch, then queries memory.
	StrategyDBMS = engine.StrategyDBMS
)

// JoinPlacement selects where columns projected through a join are created.
type JoinPlacement = engine.JoinPlacement

// Join placements for projected columns (paper Section 5.3.2).
const (
	PlaceLate         = engine.PlaceLate
	PlaceEarly        = engine.PlaceEarly
	PlaceIntermediate = engine.PlaceIntermediate
)

// PosMapPolicy selects which CSV columns positional maps track.
type PosMapPolicy = posmap.Policy

// Config configures an Engine. The zero value is the full RAW design with
// the paper's defaults.
type Config struct {
	// Strategy is the default access strategy (StrategyShreds).
	Strategy Strategy
	// PosMapPolicy selects tracked positional-map columns (default: every
	// 10th column, the paper's heuristic).
	PosMapPolicy PosMapPolicy
	// BatchSize is the vector size exchanged between operators (1024).
	BatchSize int
	// Parallelism is the number of worker goroutines queries fan out over
	// (morsel-driven parallel scans, partial/final aggregation, shared-build
	// hash joins). Values <= 1 keep every query serial. The only queries that
	// still fall back to the serial plan are those over ROOT tables and files
	// too small to split into two morsels; every fallback carries a
	// structured reason in Stats.ParallelFallback, Explain output, and a
	// lifecycle event, and results are bit-identical either way (float SUM
	// and AVG use exact summation in both plans).
	Parallelism int
	// ShredCapacityBytes bounds the column-shred cache (256 MiB).
	ShredCapacityBytes int64
	// CompileDelay simulates the one-time latency of compiling a generated
	// access path, charged to the first query that needs it.
	CompileDelay time.Duration
	// DisableShredCache turns off column-shred capture and reuse.
	DisableShredCache bool
	// JoinPlacement places join-projected columns (default PlaceLate).
	JoinPlacement JoinPlacement
	// MultiColumnShreds fetches all late columns in one pass (Figure 9's
	// speculative multi-column shreds).
	MultiColumnShreds bool
	// CacheDir, when non-empty, enables the persistent raw-data vault:
	// positional maps, JSON structural indexes and column shreds are written
	// back to <CacheDir>/<table>/*.rawv after queries and reloaded on
	// Register*, so the first query after a process restart runs warm.
	// Entries are validated against a fingerprint of the raw file (size,
	// mtime, sampled checksum, schema); any mismatch or corruption falls
	// back to a cold rebuild, so deleting the directory is always safe.
	CacheDir string
	// CacheBudget, when > 0, bounds the total in-memory bytes of positional
	// maps, structural indexes and column shreds under one unified LRU
	// budget (ShredCapacityBytes is ignored then).
	CacheBudget int64
	// DisablePushdown keeps every WHERE conjunct in a separate Filter
	// operator instead of absorbing eligible ones into the generated access
	// paths. Pushdown is on by default: predicate checks are inlined into
	// the per-row step chains of sequential scans (failing rows short-
	// circuit the rest of the row) and evaluated vectorized in via-map,
	// binary and shred scans (batches then carry a selection vector).
	DisablePushdown bool
	// DisableZoneMaps turns off the per-block min/max synopses built as a
	// free side effect of sequential scans and used to skip blocks and whole
	// morsels that a predicate excludes. Zone maps persist in the vault
	// (CacheDir) alongside positional maps and structural indexes.
	DisableZoneMaps bool
	// OnEvent, when non-nil, is called synchronously for every adaptive-
	// structure lifecycle event (captured, restored, evicted, invalidated),
	// in addition to the engine's bounded in-memory event log.
	OnEvent func(Event)
	// EventLogSize bounds the in-memory lifecycle event ring (default 512).
	EventLogSize int
	// QueryLog, when non-nil, receives one structured JSON record per query
	// (ID, SQL hash, tables, rows, per-phase timings, access paths, prune
	// counters, error). Build one with NewQueryLog or OpenQueryLog.
	QueryLog *QueryLog
	// SlowQueryMillis, when > 0 and QueryLog is set, additionally attaches a
	// trace to every otherwise-untraced query and embeds the rendered span
	// tree in the log record of any query at or over the threshold.
	SlowQueryMillis int
}

// Options overrides engine defaults for a single query.
type Options = engine.Options

// Trace collects the operator- and phase-level spans of one query. Create
// one with NewTrace, attach it via Options.Trace, then render it
// (EXPLAIN ANALYZE-style) or export it (chrome://tracing JSON) after the
// query returns. Queries without a trace plan the exact same operator tree
// they always did — tracing has zero cost when off.
type Trace = obs.Trace

// Span is one timed region of a traced query.
type Span = obs.Span

// NewTrace returns an empty trace to attach to a query via Options.Trace.
func NewTrace() *Trace { return obs.NewTrace() }

// Metrics is the engine-wide metrics registry: cumulative counters folded in
// at query end, pull-mode gauges over the adaptive-structure caches, and
// latency histograms.
type Metrics = obs.Registry

// Event is one adaptive-structure lifecycle event (captured, restored,
// evicted, invalidated).
type Event = obs.Event

// Lifecycle event kinds. EventFallback reports a multi-worker query that ran
// on the serial plan, with the structured reason in the event's Reason.
const (
	EventCaptured    = obs.EventCaptured
	EventRestored    = obs.EventRestored
	EventEvicted     = obs.EventEvicted
	EventInvalidated = obs.EventInvalidated
	EventFallback    = obs.EventFallback
	// EventQuarantined reports a corrupt persistent-vault entry that was
	// deleted on discovery; the structure rebuilt cold from the raw file.
	EventQuarantined = obs.EventQuarantined
	// EventFault reports an injected fault firing (chaos testing).
	EventFault = obs.EventFault
	// EventRetry reports a transient failure the engine absorbed by retrying
	// (raw-file load backoff, partition-lost query rerun).
	EventRetry = obs.EventRetry
	// EventStaleManifest reports a dataset manifest refresh that failed; the
	// query degraded to the partition list it last saw.
	EventStaleManifest = obs.EventStaleManifest
	// EventPanicRecovered reports a panic inside query execution that the
	// engine converted into a query error.
	EventPanicRecovered = obs.EventPanicRecovered
)

// FormatMetrics renders a metrics snapshot as sorted "name value" lines.
func FormatMetrics(snap map[string]int64) string { return obs.Format(snap) }

// WritePrometheus renders the registry in Prometheus text exposition format
// (0.0.4): HELP/TYPE headers, rawdb_-prefixed normalized names, and
// cumulative histogram buckets. Served by the query server at
// /metrics?format=prom.
func WritePrometheus(w io.Writer, m *Metrics) error { return m.WritePrometheus(w) }

// LintPrometheus validates a Prometheus text exposition stream (the checks
// promtool's format checker performs: name charset, TYPE placement, bucket
// monotonicity, +Inf terminals). Used by CI to gate the /metrics endpoint.
func LintPrometheus(r io.Reader) error { return obs.LintPrometheus(r) }

// QueryLog is a bounded, rotating sink of structured per-query JSON records.
// Attach one via Config.QueryLog; every query appends one QueryRecord line.
type QueryLog = obs.QueryLog

// QueryRecord is one structured query-log line.
type QueryRecord = obs.QueryRecord

// NewQueryLog returns a query log writing JSON lines to w (e.g. os.Stderr).
func NewQueryLog(w io.Writer) *QueryLog { return obs.NewQueryLog(w) }

// OpenQueryLog opens (appending) a query log at path, rotating once to
// path+".1" when it exceeds maxBytes (default 64 MiB when 0).
func OpenQueryLog(path string, maxBytes int64) (*QueryLog, error) {
	return obs.OpenQueryLog(path, maxBytes)
}

// HeatSnapshot is a point-in-time view of the workload-heat profiler:
// per-table scan counts, bytes read and avoided, per-structure hit/build
// counts and per-column read/filter counts. See Engine.HeatSnapshot.
type HeatSnapshot = obs.HeatSnapshot

// InflightQuery describes one currently-executing query (see
// Engine.Inflight).
type InflightQuery = engine.InflightQuery

// Stats describes how a query executed: strategy, chosen access paths,
// template-cache and shred-cache outcomes.
type Stats = engine.Stats

// Result is a fully materialised query result.
type Result = engine.Result

// Engine is a RAW query engine instance. It is safe to share across
// goroutines for registration and querying of distinct tables; concurrent
// queries over the same table serialise on internal caches.
type Engine struct {
	e *engine.Engine
}

// NewEngine returns an engine with the given configuration.
func NewEngine(cfg Config) *Engine {
	return &Engine{e: engine.New(engine.Config{
		Strategy:           cfg.Strategy,
		PosMapPolicy:       cfg.PosMapPolicy,
		BatchSize:          cfg.BatchSize,
		Parallelism:        cfg.Parallelism,
		ShredCapacityBytes: cfg.ShredCapacityBytes,
		CompileDelay:       cfg.CompileDelay,
		DisableShredCache:  cfg.DisableShredCache,
		JoinPlacement:      cfg.JoinPlacement,
		MultiColumnShreds:  cfg.MultiColumnShreds,
		CacheDir:           cfg.CacheDir,
		CacheBudget:        cfg.CacheBudget,
		DisablePushdown:    cfg.DisablePushdown,
		DisableZoneMaps:    cfg.DisableZoneMaps,
		OnEvent:            cfg.OnEvent,
		EventLogSize:       cfg.EventLogSize,
		QueryLog:           cfg.QueryLog,
		SlowQueryMillis:    cfg.SlowQueryMillis,
	})}
}

func cols(schema []Column) []catalog.Column {
	out := make([]catalog.Column, len(schema))
	for i, c := range schema {
		out[i] = catalog.Column{Name: c.Name, Type: c.Type}
	}
	return out
}

// RegisterCSV registers a CSV file as a queryable table. Registration only
// records metadata; the file is read lazily by the first query.
func (e *Engine) RegisterCSV(name, path string, schema []Column) error {
	return e.e.RegisterCSV(name, path, cols(schema))
}

// RegisterCSVData registers an in-memory CSV image.
func (e *Engine) RegisterCSVData(name string, data []byte, schema []Column) error {
	return e.e.RegisterCSVData(name, data, cols(schema))
}

// RegisterJSON registers a newline-delimited JSON file (one object per
// line) as a queryable table. The schema is partial: each column names a
// dotted path into the objects (e.g. "payload.energy"), and only declared
// paths are visible — files with arbitrarily rich objects need not be
// described in full. Registration only records metadata; the file is read
// lazily by the first query, which also builds a structural index over the
// touched paths so later queries jump straight to the needed fields.
func (e *Engine) RegisterJSON(name, path string, schema []Column) error {
	return e.e.RegisterJSON(name, path, cols(schema))
}

// RegisterJSONData registers an in-memory JSONL image.
func (e *Engine) RegisterJSONData(name string, data []byte, schema []Column) error {
	return e.e.RegisterJSONData(name, data, cols(schema))
}

// FileFormat identifies the concrete format of a dataset partition.
type FileFormat = catalog.Format

// Partition formats for RegisterDatasetFormat / RegisterDatasetParts.
const (
	FormatCSV    = catalog.CSV
	FormatJSON   = catalog.JSON
	FormatBinary = catalog.Binary
)

// RegisterDataset registers a directory or glob of raw files as one logical
// table: each matching file becomes a partition whose format is inferred
// from its extension (.csv, .json/.jsonl/.ndjson, .bin — mixed formats in
// one dataset are fine), and the partition list is refreshed at every query
// start, so files arriving in the directory are picked up and rewritten or
// truncated files are re-read without re-registration. Queries plan each
// partition independently — per-partition positional maps, structural
// indexes, column shreds and zone maps, with partitions a zone-map synopsis
// excludes pruned before their file is even opened (Stats.PartitionsSkipped)
// — and concatenate results in path order.
func (e *Engine) RegisterDataset(name, pattern string, schema []Column) error {
	return e.e.RegisterDataset(name, pattern, cols(schema))
}

// RegisterDatasetFormat is RegisterDataset with every partition forced to
// one format regardless of file extension.
func (e *Engine) RegisterDatasetFormat(name, pattern string, format FileFormat, schema []Column) error {
	return e.e.RegisterDatasetFormat(name, pattern, format, cols(schema))
}

// DatasetPart is one in-memory partition for RegisterDatasetParts.
type DatasetPart struct {
	Format FileFormat
	Data   []byte
}

// RegisterDatasetParts registers a dataset whose partitions are in-memory
// raw images, in slice order (tests, benchmarks, harnesses).
func (e *Engine) RegisterDatasetParts(name string, parts []DatasetPart, schema []Column) error {
	eps := make([]engine.DataPart, len(parts))
	for i, p := range parts {
		eps[i] = engine.DataPart{Format: p.Format, Data: p.Data}
	}
	return e.e.RegisterDatasetParts(name, eps, cols(schema))
}

// RegisterBinary registers a fixed-width binary file (see package
// internal/storage/binfile for the format).
func (e *Engine) RegisterBinary(name, path string, schema []Column) error {
	return e.e.RegisterBinary(name, path, cols(schema))
}

// RegisterBinaryData registers an in-memory binary image.
func (e *Engine) RegisterBinaryData(name string, data []byte, schema []Column) error {
	return e.e.RegisterBinaryData(name, data, cols(schema))
}

// RegisterRoot registers one tree of a ROOT-like scientific file as a table.
// The schema may be partial: only declared branches are visible, so files
// with thousands of attributes need not be described in full.
func (e *Engine) RegisterRoot(name, path, tree string, schema []Column) error {
	return e.e.RegisterRoot(name, path, tree, cols(schema))
}

// RegisterRootFile registers a tree of an already-open ROOT-like file; all
// tables registered from one file share its buffer pool.
func (e *Engine) RegisterRootFile(name string, f *rootfile.File, tree string, schema []Column) error {
	return e.e.RegisterRootFile(name, f, tree, cols(schema))
}

// RegisterResult registers a previous query result as an in-memory table,
// enabling multi-stage analyses. names renames the result columns (pass nil
// to keep them; aggregate names like "COUNT(*)" must be renamed to be
// referenced in SQL).
func (e *Engine) RegisterResult(name string, res *Result, names []string) error {
	return e.e.RegisterResult(name, res, names)
}

// DropTable removes a registered table.
func (e *Engine) DropTable(name string) error { return e.e.DropTable(name) }

// Metrics exposes the engine-wide metrics registry.
func (e *Engine) Metrics() *Metrics { return e.e.Metrics() }

// CacheBudgetUsage reports the unified cache budget's current size and
// capacity in bytes (both 0 when the engine runs without a budget).
func (e *Engine) CacheBudgetUsage() (used, capacity int64) { return e.e.CacheBudgetUsage() }

// EstimateQueryBytes estimates the adaptive-structure bytes a query could
// add to the cache budget (see the server's memory governor).
func (e *Engine) EstimateQueryBytes(src string) int64 { return e.e.EstimateQueryBytes(src) }

// RecentEvents returns the buffered adaptive-structure lifecycle events,
// oldest first.
func (e *Engine) RecentEvents() []Event { return e.e.RecentEvents() }

// HeatSnapshot returns the workload-heat profiler's current per-table view
// (scans, bytes read/avoided, structure effectiveness, column touch counts).
func (e *Engine) HeatSnapshot() HeatSnapshot { return e.e.Heat().Snapshot() }

// Inflight lists the queries currently executing (or queued inside the
// engine), sorted by query ID.
func (e *Engine) Inflight() []InflightQuery { return e.e.Inflight() }

// CancelQuery cancels the in-flight query with the given ID, if it is still
// running. The query fails with a context.Canceled-wrapping error, publishes
// no cache structures, and releases its locks within one batch of work.
func (e *Engine) CancelQuery(id int64) bool { return e.e.CancelQuery(id) }

// Tables returns the registered table names, sorted.
func (e *Engine) Tables() []string { return e.e.Catalog().Names() }

// Query parses, plans and executes one SQL statement.
func (e *Engine) Query(src string) (*Result, error) { return e.e.Query(src) }

// QueryOpt executes one SQL statement with per-query option overrides.
func (e *Engine) QueryOpt(src string, opts Options) (*Result, error) {
	return e.e.QueryOpt(src, opts)
}

// QueryCtx is Query with a cancellation context: when ctx is cancelled or its
// deadline passes, the running plan is abandoned within one batch of work, no
// cache structure is published, and the query's table locks and budget bytes
// are released. The returned error wraps ctx.Err(), so errors.Is against
// context.Canceled / context.DeadlineExceeded works.
func (e *Engine) QueryCtx(ctx context.Context, src string) (*Result, error) {
	return e.e.QueryCtx(ctx, src)
}

// QueryOptCtx is QueryCtx with per-query option overrides.
func (e *Engine) QueryOptCtx(ctx context.Context, src string, opts Options) (*Result, error) {
	return e.e.QueryOptCtx(ctx, src, opts)
}

// Explain describes the physical plan the engine would choose for src under
// the current cache state, without executing it.
func (e *Engine) Explain(src string, opts Options) (string, error) {
	return e.e.Explain(src, opts)
}

// DropCaches clears all query-derived state (positional maps, column shreds,
// generated access paths, loaded columns, file buffer pools), simulating a
// cold start. The persistent vault (Config.CacheDir) is not touched: it is
// only read at Register* time.
func (e *Engine) DropCaches() { e.e.DropCaches() }

// FlushVault writes back every dirty adaptive structure to the persistent
// vault and waits for in-flight asynchronous write-backs. A no-op without
// Config.CacheDir.
func (e *Engine) FlushVault() { e.e.FlushVault() }

// Close flushes pending vault write-backs so the next process restarts warm.
// The engine remains usable afterwards.
func (e *Engine) Close() error { return e.e.Close() }

// Internal returns the underlying engine for benchmark and test harnesses
// inside this module.
func (e *Engine) Internal() *engine.Engine { return e.e }
