module rawdb

go 1.24
