// Differential-testing harness: a seeded random query generator drives the
// engine across every strategy × format × worker count × vault mode, and a
// naive in-memory oracle executor independently computes each query's answer
// over the same rows. Results must match the oracle byte for byte (floats by
// bit pattern), which subsumes the hand-written parity cases as the coverage
// backbone: any divergence between access paths — JIT vs generic scans,
// positional-map navigation, shred reuse, morsel-parallel merges, parallel
// hash joins, vault restore — surfaces as an oracle mismatch with a
// reproducible seed.
//
// The oracle mirrors the engine's documented semantics exactly: filters are
// conjunctions evaluated per row in file order; joins emit each probe-side
// match in probe file order with its build-side matches in build file order;
// ungrouped aggregates emit one row (zeroes at COUNT = 0); grouped aggregates
// emit groups in first-encounter order; HAVING filters aggregate rows after
// grouping. Float SUM/AVG are exact at every worker count: generated values
// are multiples of 1/64 with bounded magnitude, so the oracle's naive
// file-order accumulation and the engine's compensated summation (serial
// expansions, parallel hi/lo partial transport) land on the same correctly
// rounded double.
package raw_test

import (
	"fmt"
	"math"
	"math/rand"
	"os"
	"strconv"
	"strings"
	"testing"

	"rawdb"
	"rawdb/internal/storage/binfile"
	"rawdb/internal/vector"
	"rawdb/internal/workload"
)

// difftestQueries is the per-strategy×format query budget. Every query runs
// against the oracle in every vault mode of the combination.
const difftestQueries = 200

// difftestTrace attaches a fresh Trace to every dataset-mode query when
// RAWDB_DIFF_TRACE=1 (the CI traced pass): results must stay bit-exact
// against the oracle with span instrumentation threaded through every
// operator, proving tracing never perturbs execution.
var difftestTrace = os.Getenv("RAWDB_DIFF_TRACE") == "1"

// dtTable is a randomly generated table: schema plus column-major data.
type dtTable struct {
	cols   []raw.Column
	ints   map[int][]int64
	floats map[int][]float64
	group  int // small-cardinality BIGINT column for GROUP BY
	nrows  int
}

// genTable builds a random schema (mixed BIGINT/DOUBLE, one low-cardinality
// group column, one nested JSON path) and data. Float values are multiples
// of 1/64 so their decimal renderings parse back bit-exactly through every
// text format.
func genTable(rng *rand.Rand, nrows int) *dtTable {
	ncols := 5 + rng.Intn(3)
	t := &dtTable{
		ints:   make(map[int][]int64),
		floats: make(map[int][]float64),
		nrows:  nrows,
	}
	t.group = 1 + rng.Intn(ncols-1)
	nestedDone := false
	for c := 0; c < ncols; c++ {
		name := fmt.Sprintf("col%d", c+1)
		isFloat := c != 0 && c != t.group && rng.Intn(5) < 2
		if isFloat && !nestedDone {
			name = "p.x" // one nested path exercises JSON object navigation
			nestedDone = true
		}
		typ := raw.Int64
		if isFloat {
			typ = raw.Float64
		}
		t.cols = append(t.cols, raw.Column{Name: name, Type: typ})
		for r := 0; r < nrows; r++ {
			switch {
			case isFloat:
				t.floats[c] = append(t.floats[c], float64(rng.Int63n(1<<21)-(1<<20))/64)
			case c == t.group:
				t.ints[c] = append(t.ints[c], rng.Int63n(7))
			default:
				t.ints[c] = append(t.ints[c], rng.Int63n(2_000_001)-1_000_000)
			}
		}
	}
	return t
}

func (t *dtTable) renderCSV() []byte {
	var b strings.Builder
	for r := 0; r < t.nrows; r++ {
		for c := range t.cols {
			if c > 0 {
				b.WriteByte(',')
			}
			if t.cols[c].Type == raw.Int64 {
				b.WriteString(strconv.FormatInt(t.ints[c][r], 10))
			} else {
				b.WriteString(strconv.FormatFloat(t.floats[c][r], 'f', -1, 64))
			}
		}
		b.WriteByte('\n')
	}
	return []byte(b.String())
}

func (t *dtTable) renderJSONL() []byte {
	var b strings.Builder
	for r := 0; r < t.nrows; r++ {
		b.WriteByte('{')
		for c := range t.cols {
			if c > 0 {
				b.WriteByte(',')
			}
			name := t.cols[c].Name
			var val string
			if t.cols[c].Type == raw.Int64 {
				val = strconv.FormatInt(t.ints[c][r], 10)
			} else {
				val = strconv.FormatFloat(t.floats[c][r], 'f', -1, 64)
			}
			if dot := strings.IndexByte(name, '.'); dot >= 0 {
				fmt.Fprintf(&b, "%q:{%q:%s}", name[:dot], name[dot+1:], val)
			} else {
				fmt.Fprintf(&b, "%q:%s", name, val)
			}
		}
		b.WriteString("}\n")
	}
	return []byte(b.String())
}

func (t *dtTable) renderBin(tb testing.TB) []byte {
	var buf strings.Builder
	types := make([]vector.Type, len(t.cols))
	for c, col := range t.cols {
		types[c] = col.Type
	}
	w, err := binfile.NewWriter(&buf, types, int64(t.nrows))
	if err != nil {
		tb.Fatal(err)
	}
	ints := make([]int64, 0, len(t.cols))
	floats := make([]float64, 0, len(t.cols))
	for r := 0; r < t.nrows; r++ {
		ints, floats = ints[:0], floats[:0]
		for c := range t.cols {
			if t.cols[c].Type == raw.Int64 {
				ints = append(ints, t.ints[c][r])
			} else {
				floats = append(floats, t.floats[c][r])
			}
		}
		if err := w.WriteRow(ints, floats); err != nil {
			tb.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		tb.Fatal(err)
	}
	return []byte(buf.String())
}

// dtTabs pairs the two generated tables: "t" is the larger probe side, "u"
// the smaller build side of generated joins.
type dtTabs struct {
	t, u *dtTable
}

func (ts dtTabs) tab(i int) *dtTable {
	if i == 0 {
		return ts.t
	}
	return ts.u
}

// plainCols returns the column indexes whose names carry no nested JSON
// path. Join queries qualify every reference with a table alias, and a
// qualified nested path ("t.p.x") would be ambiguous between alias and
// object navigation, so they stick to plain names.
func plainCols(t *dtTable) []int {
	var out []int
	for c, col := range t.cols {
		if !strings.ContainsRune(col.Name, '.') {
			out = append(out, c)
		}
	}
	return out
}

// intCols returns the BIGINT column indexes (join-key candidates).
func intCols(t *dtTable) []int {
	var out []int
	for c, col := range t.cols {
		if col.Type == raw.Int64 {
			out = append(out, c)
		}
	}
	return out
}

// --- random queries ---

type dtItem struct {
	agg  string // "", COUNT, MIN, MAX, SUM, AVG
	star bool
	tbl  int // 0 = t, 1 = u (always 0 for single-table queries)
	col  int
}

type dtPred struct {
	tbl int
	col int
	op  string
	i64 int64
	f64 float64
}

// dtHaving is one HAVING condition: an aggregate compared against a literal.
type dtHaving struct {
	item dtItem
	op   string
	i64  int64
	f64  float64
}

type dtQuery struct {
	items      []dtItem
	preds      []dtPred
	join       bool
	tkey, ukey int // join key columns (t.tkey = u.ukey) when join is set
	groupTbl   int
	groupBy    int // -1 for none
	having     []dtHaving
}

var dtOps = []string{"<", "<=", ">", ">=", "=", "<>"}

// itemType is the engine's output type for one select item.
func (ts dtTabs) itemType(it dtItem) raw.Type {
	switch {
	case it.star, it.agg == "COUNT":
		return raw.Int64
	case it.agg == "AVG":
		return raw.Float64
	default:
		return ts.tab(it.tbl).cols[it.col].Type
	}
}

func genPred(rng *rand.Rand, ts dtTabs, tbl int, plainOnly bool) dtPred {
	t := ts.tab(tbl)
	var c int
	if plainOnly {
		cands := plainCols(t)
		c = cands[rng.Intn(len(cands))]
	} else {
		c = rng.Intn(len(t.cols))
	}
	p := dtPred{tbl: tbl, col: c, op: dtOps[rng.Intn(len(dtOps))]}
	r := rng.Intn(t.nrows)
	if t.cols[c].Type == raw.Int64 {
		p.i64 = t.ints[c][r] + rng.Int63n(3) - 1
	} else {
		p.f64 = t.floats[c][r] // exact data value: '=' can match
	}
	return p
}

func genAggItem(rng *rand.Rand, ts dtTabs, join bool) dtItem {
	tbl := 0
	if join && rng.Intn(2) == 1 {
		tbl = 1
	}
	t := ts.tab(tbl)
	pick := func() int {
		if join {
			cands := plainCols(t)
			return cands[rng.Intn(len(cands))]
		}
		return rng.Intn(len(t.cols))
	}
	switch rng.Intn(6) {
	case 0:
		return dtItem{agg: "COUNT", star: true}
	case 1:
		return dtItem{agg: "MIN", tbl: tbl, col: pick()}
	case 2:
		return dtItem{agg: "MAX", tbl: tbl, col: pick()}
	case 3:
		return dtItem{agg: "SUM", tbl: tbl, col: pick()}
	case 4:
		return dtItem{agg: "AVG", tbl: tbl, col: pick()}
	default:
		return dtItem{agg: "COUNT", tbl: tbl, col: pick()}
	}
}

// genHaving builds one HAVING condition. The literal's spelling follows the
// aggregate's OUTPUT type: integer-valued aggregates get integer literals
// (the engine compares them on the BIGINT field, truncating a float literal,
// which the oracle would then have to mimic), float-valued ones get exact
// 1/64-multiple literals so '=' can genuinely hit.
func genHaving(rng *rand.Rand, ts dtTabs, join bool) dtHaving {
	it := genAggItem(rng, ts, join)
	h := dtHaving{item: it, op: dtOps[rng.Intn(len(dtOps))]}
	if ts.itemType(it) == raw.Int64 {
		if it.agg == "COUNT" {
			h.i64 = rng.Int63n(12)
		} else {
			h.i64 = rng.Int63n(2_000_001) - 1_000_000
		}
		h.f64 = float64(h.i64)
	} else {
		h.f64 = float64(rng.Int63n(1<<21)-(1<<20)) / 64
		h.i64 = int64(h.f64)
	}
	return h
}

func genQuery(rng *rand.Rand, ts dtTabs) dtQuery {
	q := dtQuery{groupBy: -1}
	q.join = rng.Intn(3) == 0
	if q.join {
		if rng.Intn(2) == 0 {
			// Group column against group column: cardinality 7 on both
			// sides guarantees fan-out through every hash partition.
			q.tkey, q.ukey = ts.t.group, ts.u.group
		} else {
			tc, uc := intCols(ts.t), intCols(ts.u)
			q.tkey = tc[rng.Intn(len(tc))]
			q.ukey = uc[rng.Intn(len(uc))]
		}
	}
	side := func() int {
		if q.join {
			return rng.Intn(2)
		}
		return 0
	}
	for n := rng.Intn(3); n > 0; n-- {
		q.preds = append(q.preds, genPred(rng, ts, side(), q.join))
	}
	switch kind := rng.Intn(5); kind {
	case 0: // plain projection
		for n := 1 + rng.Intn(3); n > 0; n-- {
			tbl := side()
			t := ts.tab(tbl)
			var c int
			if q.join {
				cands := plainCols(t)
				c = cands[rng.Intn(len(cands))]
			} else {
				c = rng.Intn(len(t.cols))
			}
			q.items = append(q.items, dtItem{tbl: tbl, col: c})
		}
		if len(q.preds) == 0 { // keep projected row counts modest
			q.preds = append(q.preds, genPred(rng, ts, side(), q.join))
		}
	case 1: // grouped aggregate, sometimes with HAVING
		q.groupTbl = side()
		q.groupBy = ts.tab(q.groupTbl).group
		if rng.Intn(2) == 0 {
			q.items = append(q.items, dtItem{tbl: q.groupTbl, col: q.groupBy})
		}
		for n := 1 + rng.Intn(2); n > 0; n-- {
			q.items = append(q.items, genAggItem(rng, ts, q.join))
		}
		if rng.Intn(2) == 0 {
			q.having = append(q.having, genHaving(rng, ts, q.join))
		}
	case 2: // bare GROUP BY: distinct keys, no aggregate items
		q.groupTbl = side()
		q.groupBy = ts.tab(q.groupTbl).group
		q.items = append(q.items, dtItem{tbl: q.groupTbl, col: q.groupBy})
	default: // ungrouped aggregate, occasionally with HAVING
		for n := 1 + rng.Intn(3); n > 0; n-- {
			q.items = append(q.items, genAggItem(rng, ts, q.join))
		}
		if rng.Intn(4) == 0 {
			q.having = append(q.having, genHaving(rng, ts, q.join))
		}
	}
	return q
}

func (q dtQuery) SQL(ts dtTabs) string {
	alias := [2]string{"t", "u"}
	name := func(tbl, col int) string {
		n := ts.tab(tbl).cols[col].Name
		if q.join {
			return alias[tbl] + "." + n
		}
		return n
	}
	item := func(b *strings.Builder, it dtItem) {
		switch {
		case it.star:
			b.WriteString("COUNT(*)")
		case it.agg != "":
			fmt.Fprintf(b, "%s(%s)", it.agg, name(it.tbl, it.col))
		default:
			b.WriteString(name(it.tbl, it.col))
		}
	}
	var b strings.Builder
	b.WriteString("SELECT ")
	for i, it := range q.items {
		if i > 0 {
			b.WriteString(", ")
		}
		item(&b, it)
	}
	b.WriteString(" FROM t")
	if q.join {
		b.WriteString(", u")
	}
	first := true
	cond := func() {
		if first {
			b.WriteString(" WHERE ")
			first = false
		} else {
			b.WriteString(" AND ")
		}
	}
	if q.join {
		cond()
		fmt.Fprintf(&b, "t.%s = u.%s", ts.t.cols[q.tkey].Name, ts.u.cols[q.ukey].Name)
	}
	for _, p := range q.preds {
		cond()
		if ts.tab(p.tbl).cols[p.col].Type == raw.Int64 {
			fmt.Fprintf(&b, "%s %s %d", name(p.tbl, p.col), p.op, p.i64)
		} else {
			fmt.Fprintf(&b, "%s %s %s", name(p.tbl, p.col), p.op,
				strconv.FormatFloat(p.f64, 'f', -1, 64))
		}
	}
	if q.groupBy >= 0 {
		fmt.Fprintf(&b, " GROUP BY %s", name(q.groupTbl, q.groupBy))
	}
	for _, h := range q.having {
		b.WriteString(" HAVING ")
		item(&b, h.item)
		if ts.itemType(h.item) == raw.Int64 {
			fmt.Fprintf(&b, " %s %d", h.op, h.i64)
		} else {
			fmt.Fprintf(&b, " %s %s", h.op, strconv.FormatFloat(h.f64, 'f', -1, 64))
		}
	}
	return b.String()
}

// --- the oracle ---

type oracleCell struct {
	i int64
	f float64
}

// dtPair addresses one logical row: an index into t plus, for joins, an
// index into u (-1 otherwise).
type dtPair struct {
	t, u int
}

func cmpOK(cmp int, op string) bool {
	switch op {
	case "<":
		return cmp < 0
	case "<=":
		return cmp <= 0
	case ">":
		return cmp > 0
	case ">=":
		return cmp >= 0
	case "=":
		return cmp == 0
	case "<>":
		return cmp != 0
	}
	return false
}

// oracle evaluates a query naively: filter in file order, join as a
// file-order nested loop (probe rows outer, build matches in build file
// order — the hash join's emission order), aggregate in file order, groups
// in first-encounter order, HAVING applied to the finished aggregate rows.
// Returns row-major cells plus the output type per item.
func oracle(ts dtTabs, q dtQuery) (rows [][]oracleCell, types []raw.Type) {
	for _, it := range q.items {
		types = append(types, ts.itemType(it))
	}

	match := func(tbl, r int) bool {
		t := ts.tab(tbl)
		for _, p := range q.preds {
			if p.tbl != tbl {
				continue
			}
			var cmp int
			if t.cols[p.col].Type == raw.Int64 {
				v := t.ints[p.col][r]
				switch {
				case v < p.i64:
					cmp = -1
				case v > p.i64:
					cmp = 1
				}
			} else {
				v := t.floats[p.col][r]
				switch {
				case v < p.f64:
					cmp = -1
				case v > p.f64:
					cmp = 1
				}
			}
			if !cmpOK(cmp, p.op) {
				return false
			}
		}
		return true
	}

	var selected []dtPair
	if q.join {
		var urows []int
		for r := 0; r < ts.u.nrows; r++ {
			if match(1, r) {
				urows = append(urows, r)
			}
		}
		for r := 0; r < ts.t.nrows; r++ {
			if !match(0, r) {
				continue
			}
			k := ts.t.ints[q.tkey][r]
			for _, s := range urows {
				if ts.u.ints[q.ukey][s] == k {
					selected = append(selected, dtPair{t: r, u: s})
				}
			}
		}
	} else {
		for r := 0; r < ts.t.nrows; r++ {
			if match(0, r) {
				selected = append(selected, dtPair{t: r, u: -1})
			}
		}
	}

	rowOf := func(tbl int, p dtPair) int {
		if tbl == 0 {
			return p.t
		}
		return p.u
	}

	hasAgg := len(q.having) > 0
	for _, it := range q.items {
		if it.agg != "" {
			hasAgg = true
		}
	}
	if !hasAgg && q.groupBy < 0 {
		for _, p := range selected {
			var row []oracleCell
			for _, it := range q.items {
				t, r := ts.tab(it.tbl), rowOf(it.tbl, p)
				if t.cols[it.col].Type == raw.Int64 {
					row = append(row, oracleCell{i: t.ints[it.col][r]})
				} else {
					row = append(row, oracleCell{f: t.floats[it.col][r]})
				}
			}
			rows = append(rows, row)
		}
		return rows, types
	}

	// aggState mirrors the engine's per-spec accumulator exactly. Naive
	// float accumulation suffices: every value is a multiple of 1/64 with
	// bounded magnitude, so each running sum is exactly representable and
	// equals the engine's correctly rounded compensated total.
	type aggState struct {
		count int64
		i     int64
		f     float64
	}
	update := func(st *aggState, it dtItem, p dtPair) {
		if it.agg == "COUNT" { // counts rows regardless of column (no NULLs)
			st.count++
			return
		}
		t, r := ts.tab(it.tbl), rowOf(it.tbl, p)
		if t.cols[it.col].Type == raw.Int64 {
			v := t.ints[it.col][r]
			switch it.agg {
			case "MIN":
				if st.count == 0 || v < st.i {
					st.i = v
				}
			case "MAX":
				if st.count == 0 || v > st.i {
					st.i = v
				}
			case "SUM", "AVG":
				if st.count == 0 {
					st.i = 0
				}
				st.i += v
			}
		} else {
			v := t.floats[it.col][r]
			switch it.agg {
			case "MIN":
				if st.count == 0 || v < st.f {
					st.f = v
				}
			case "MAX":
				if st.count == 0 || v > st.f {
					st.f = v
				}
			case "SUM", "AVG":
				if st.count == 0 {
					st.f = 0
				}
				st.f += v
			}
		}
		st.count++
	}
	emit := func(st aggState, it dtItem) oracleCell {
		switch {
		case it.agg == "COUNT":
			return oracleCell{i: st.count}
		case it.agg == "AVG":
			var sum float64
			if ts.tab(it.tbl).cols[it.col].Type == raw.Int64 {
				sum = float64(st.i)
			} else {
				sum = st.f
			}
			if st.count == 0 {
				return oracleCell{f: 0}
			}
			return oracleCell{f: sum / float64(st.count)}
		case ts.tab(it.tbl).cols[it.col].Type == raw.Int64:
			if st.count == 0 {
				return oracleCell{i: 0}
			}
			return oracleCell{i: st.i}
		default:
			if st.count == 0 {
				return oracleCell{f: 0}
			}
			return oracleCell{f: st.f}
		}
	}

	// HAVING conditions accumulate as shadow items appended after the
	// select list; the engine's aggregate does the same (the HAVING spec
	// joins the spec list, deduplicated against identical select specs —
	// either way the values coincide).
	allItems := make([]dtItem, 0, len(q.items)+len(q.having))
	allItems = append(allItems, q.items...)
	for _, h := range q.having {
		allItems = append(allItems, h.item)
	}
	passHaving := func(states []aggState) bool {
		for hi, h := range q.having {
			cell := emit(states[len(q.items)+hi], h.item)
			var cmp int
			if ts.itemType(h.item) == raw.Int64 {
				switch {
				case cell.i < h.i64:
					cmp = -1
				case cell.i > h.i64:
					cmp = 1
				}
			} else {
				switch {
				case cell.f < h.f64:
					cmp = -1
				case cell.f > h.f64:
					cmp = 1
				}
			}
			if !cmpOK(cmp, h.op) {
				return false
			}
		}
		return true
	}

	if q.groupBy < 0 {
		states := make([]aggState, len(allItems))
		for _, p := range selected {
			for i, it := range allItems {
				update(&states[i], it, p)
			}
		}
		if !passHaving(states) {
			return nil, types
		}
		row := make([]oracleCell, len(q.items))
		for i, it := range q.items {
			row[i] = emit(states[i], it)
		}
		return [][]oracleCell{row}, types
	}

	// Grouped: first-encounter order over the filtered (joined) rows.
	slot := make(map[int64]int)
	var keys []int64
	var states [][]aggState
	gt := ts.tab(q.groupTbl)
	for _, p := range selected {
		k := gt.ints[q.groupBy][rowOf(q.groupTbl, p)]
		s, ok := slot[k]
		if !ok {
			s = len(keys)
			slot[k] = s
			keys = append(keys, k)
			states = append(states, make([]aggState, len(allItems)))
		}
		for i, it := range allItems {
			if it.agg != "" {
				update(&states[s][i], it, p)
			}
		}
	}
	for s, k := range keys {
		if !passHaving(states[s]) {
			continue
		}
		row := make([]oracleCell, len(q.items))
		for i, it := range q.items {
			if it.agg == "" {
				row[i] = oracleCell{i: k} // bare group column
			} else {
				row[i] = emit(states[s][i], it)
			}
		}
		rows = append(rows, row)
	}
	return rows, types
}

// checkOracle compares an engine result against the oracle bit for bit.
func checkOracle(t *testing.T, label, sql string, res *raw.Result, want [][]oracleCell, types []raw.Type) {
	t.Helper()
	if res.NumRows() != len(want) || len(res.Columns) != len(types) {
		t.Fatalf("%s: %q: shape %dx%d, oracle %dx%d",
			label, sql, res.NumRows(), len(res.Columns), len(want), len(types))
	}
	for c, typ := range types {
		if res.Types[c] != typ {
			t.Fatalf("%s: %q: column %d type %v, oracle %v", label, sql, c, res.Types[c], typ)
		}
	}
	for r := range want {
		for c := range types {
			if types[c] == raw.Float64 {
				g, w := res.Float64(r, c), want[r][c].f
				if math.Float64bits(g) != math.Float64bits(w) {
					t.Fatalf("%s: %q: cell (%d,%d) = %v (bits %x), oracle %v (bits %x)",
						label, sql, r, c, g, math.Float64bits(g), w, math.Float64bits(w))
				}
			} else if g := res.Int64(r, c); g != want[r][c].i {
				t.Fatalf("%s: %q: cell (%d,%d) = %d, oracle %d", label, sql, r, c, g, want[r][c].i)
			}
		}
	}
}

// registerDT registers one generated table under one format.
func registerDT(t *testing.T, e *raw.Engine, name string, tab *dtTable, format string,
	csv, jsonl, bin []byte) {
	t.Helper()
	var err error
	switch format {
	case "csv":
		err = e.RegisterCSVData(name, csv, tab.cols)
	case "json":
		err = e.RegisterJSONData(name, jsonl, tab.cols)
	case "bin":
		err = e.RegisterBinaryData(name, bin, tab.cols)
	}
	if err != nil {
		t.Fatal(err)
	}
}

// TestDifferentialDataset is the "dataset" harness mode: the same rows
// registered as one file and as 1/4/16-partition datasets (including a
// mixed CSV/JSONL split) must answer every random query bit-exactly like the
// oracle, at workers 1/2/8, with a vault enabled from cold and again after a
// process "restart" served from manifest.rawv and the per-partition vault
// namespaces. A second two-partition dataset "u" joins the big one in the
// generated join queries.
func TestDifferentialDataset(t *testing.T) {
	splits := []struct {
		name  string
		parts int
		mixed bool
	}{
		{"single", 1, false},
		{"parts4", 4, false},
		{"parts16", 16, false},
		{"mixed4", 4, true},
	}
	for si, s := range splits {
		t.Run(s.name, func(t *testing.T) {
			seed := int64(7000 + si)
			rng := rand.New(rand.NewSource(seed))
			tab := genTable(rng, 160)
			utab := genTable(rng, 40)
			ts := dtTabs{t: tab, u: utab}
			csv, jsonl := tab.renderCSV(), tab.renderJSONL()
			cchunks := workload.SplitRows(csv, s.parts)
			jchunks := workload.SplitRows(jsonl, s.parts)
			var parts []raw.DatasetPart
			for i := range cchunks {
				p := raw.DatasetPart{Format: raw.FormatCSV, Data: cchunks[i]}
				if s.mixed && i%2 == 1 {
					p = raw.DatasetPart{Format: raw.FormatJSON, Data: jchunks[i]}
				}
				parts = append(parts, p)
			}
			var uparts []raw.DatasetPart
			for _, chunk := range workload.SplitRows(utab.renderCSV(), 2) {
				uparts = append(uparts, raw.DatasetPart{Format: raw.FormatCSV, Data: chunk})
			}

			queries := make([]dtQuery, difftestQueries/2)
			for i := range queries {
				queries[i] = genQuery(rng, ts)
			}
			workerCycle := []int{1, 2, 8}
			run := func(name string, eng *raw.Engine) {
				t.Helper()
				for qi, q := range queries {
					sql := q.SQL(ts)
					w := workerCycle[qi%len(workerCycle)]
					var tr *raw.Trace
					if difftestTrace {
						tr = raw.NewTrace()
					}
					res, err := eng.QueryOpt(sql, raw.Options{Parallelism: &w, Trace: tr})
					if err != nil {
						t.Fatalf("%s (seed %d) query %d %q: %v", name, seed, qi, sql, err)
					}
					want, types := oracle(ts, q)
					checkOracle(t, fmt.Sprintf("%s (seed %d) query %d workers %d", name, seed, qi, w),
						sql, res, want, types)
				}
			}
			register := func(eng *raw.Engine) {
				t.Helper()
				if err := eng.RegisterDatasetParts("t", parts, tab.cols); err != nil {
					t.Fatal(err)
				}
				if err := eng.RegisterDatasetParts("u", uparts, utab.cols); err != nil {
					t.Fatal(err)
				}
			}

			plain := raw.NewEngine(raw.Config{})
			register(plain)
			run("vault-off", plain)

			dir := t.TempDir()
			cold := raw.NewEngine(raw.Config{CacheDir: dir})
			register(cold)
			run("vault-cold", cold)
			cold.Close()

			restarted := raw.NewEngine(raw.Config{CacheDir: dir})
			register(restarted)
			run("vault-restart", restarted)
			restarted.Close()
		})
	}
}

// TestDifferentialOracle is the coverage backbone: difftestQueries random
// queries per strategy × format — joins, GROUP BY, HAVING and float
// SUM/AVG included — each executed at workers 1/2/8 (cycling) and, for the
// cache-building strategies, in three vault modes: vault off, vault enabled
// from a cold directory, and a restarted engine loading the populated
// directory — all compared against the oracle.
func TestDifferentialOracle(t *testing.T) {
	strategies := []struct {
		name  string
		strat raw.Strategy
		vault bool // strategy builds persistent structures worth vault modes
	}{
		{"shreds", raw.StrategyShreds, true},
		{"jit", raw.StrategyJIT, true},
		{"insitu", raw.StrategyInSitu, true},
		{"external", raw.StrategyExternal, false},
		{"dbms", raw.StrategyDBMS, false},
	}
	workerCycle := []int{1, 2, 8}
	for si, s := range strategies {
		for fi, format := range []string{"csv", "json", "bin"} {
			if s.strat == raw.StrategyExternal && format != "csv" {
				continue
			}
			t.Run(s.name+"/"+format, func(t *testing.T) {
				seed := int64(1000 + 100*si + fi)
				rng := rand.New(rand.NewSource(seed))
				tab := genTable(rng, 150)
				utab := genTable(rng, 40)
				ts := dtTabs{t: tab, u: utab}
				csv, jsonl := tab.renderCSV(), tab.renderJSONL()
				bin := tab.renderBin(t)
				ucsv, ujsonl := utab.renderCSV(), utab.renderJSONL()
				ubin := utab.renderBin(t)

				queries := make([]dtQuery, difftestQueries)
				for i := range queries {
					queries[i] = genQuery(rng, ts)
				}

				type mode struct {
					name string
					eng  *raw.Engine
				}
				modes := []mode{{"vault-off", raw.NewEngine(raw.Config{Strategy: s.strat})}}
				// Pushdown and zone maps forced off (they are on by default, so
				// the other modes exercise them wherever a scan can absorb
				// predicates): any divergence between in-scan pruning and the
				// Filter-above plan shape surfaces as an oracle mismatch.
				modes = append(modes, mode{"nopush", raw.NewEngine(raw.Config{
					Strategy: s.strat, DisablePushdown: true, DisableZoneMaps: true})})
				// And the opposite extreme: shred capture disabled, so every
				// eligible scan absorbs its predicates and consults zone maps
				// (capture otherwise wins the capture-vs-pruning conflict).
				modes = append(modes, mode{"push-nocache", raw.NewEngine(raw.Config{
					Strategy: s.strat, DisableShredCache: true})})
				var dir string
				var vaultEng *raw.Engine
				if s.vault {
					dir = t.TempDir()
					vaultEng = raw.NewEngine(raw.Config{Strategy: s.strat, CacheDir: dir})
					modes = append(modes, mode{"vault-cold", vaultEng})
				}
				for _, m := range modes {
					registerDT(t, m.eng, "t", tab, format, csv, jsonl, bin)
					registerDT(t, m.eng, "u", utab, format, ucsv, ujsonl, ubin)
				}
				run := func(m mode) {
					for qi, q := range queries {
						sql := q.SQL(ts)
						w := workerCycle[qi%len(workerCycle)]
						res, err := m.eng.QueryOpt(sql, raw.Options{Parallelism: &w})
						if err != nil {
							t.Fatalf("%s (seed %d) query %d %q: %v", m.name, seed, qi, sql, err)
						}
						want, types := oracle(ts, q)
						checkOracle(t, fmt.Sprintf("%s (seed %d) query %d workers %d", m.name, seed, qi, w),
							sql, res, want, types)
					}
				}
				for _, m := range modes {
					run(m)
				}
				if s.vault {
					// Flush the populated vault and "restart" into it: the
					// same suite must pass starting from vault-loaded
					// structures (positional maps, indexes, shreds, synopses).
					vaultEng.Close()
					restarted := mode{"vault-restart",
						raw.NewEngine(raw.Config{Strategy: s.strat, CacheDir: dir})}
					registerDT(t, restarted.eng, "t", tab, format, csv, jsonl, bin)
					registerDT(t, restarted.eng, "u", utab, format, ucsv, ujsonl, ubin)
					run(restarted)
					restarted.eng.Close()
				}
			})
		}
	}
}
