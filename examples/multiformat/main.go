// Multiformat: join heterogeneous raw files — a CSV file against a binary
// file — in one query, the capability the paper motivates with mixed
// CSV/ROOT analyses. Each format gets its own generated access path; the
// join itself is format-agnostic.
//
//	go run ./examples/multiformat
package main

import (
	"fmt"
	"log"

	"rawdb"
	"rawdb/internal/workload"
)

func main() {
	// Two copies of the same logical table: file1 as CSV, file2 as the
	// fixed-width binary format, rows shuffled. col1 is the join key.
	f1, f2, err := workload.NarrowShuffledPair(20_000, 42)
	if err != nil {
		log.Fatal(err)
	}
	schema := make([]raw.Column, len(f1.Schema))
	for i, c := range f1.Schema {
		schema[i] = raw.Column{Name: c.Name, Type: c.Type}
	}

	eng := raw.NewEngine(raw.Config{})
	if err := eng.RegisterCSVData("file1", f1.CSV, schema); err != nil {
		log.Fatal(err)
	}
	if err := eng.RegisterBinaryData("file2", f2.Bin, schema); err != nil {
		log.Fatal(err)
	}

	// A filtered join across the two formats: find the maximum col11 of
	// CSV rows whose binary counterpart passes a filter.
	q := `SELECT MAX(f1.col11), COUNT(*) FROM file1 f1, file2 f2
	      WHERE f1.col1 = f2.col1 AND f2.col2 < 100000000`
	res, err := eng.Query(q)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("MAX(f1.col11) = %d over %d joined rows\n", res.Int64(0, 0), res.Int64(0, 1))
	fmt.Printf("strategy=%s elapsed=%v\n", res.Stats.Strategy, res.Stats.Elapsed.Round(1000))
	fmt.Println("access paths (one per file format):")
	for _, ap := range res.Stats.AccessPaths {
		fmt.Println("  -", ap)
	}
}
