// Quickstart: query a CSV file in place — no loading step, no schema DDL
// beyond declaring column types.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"rawdb"
)

func main() {
	// A small CSV file of (id, score, weight) rows.
	dir, err := os.MkdirTemp("", "raw-quickstart")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "scores.csv")
	csv := "1,85,0.5\n2,92,1.25\n3,40,2.0\n4,77,0.75\n5,92,1.0\n"
	if err := os.WriteFile(path, []byte(csv), 0o644); err != nil {
		log.Fatal(err)
	}

	// Registering a table stores metadata only; the file is first read when
	// a query needs it.
	eng := raw.NewEngine(raw.Config{})
	err = eng.RegisterCSV("scores", path, []raw.Column{
		{Name: "id", Type: raw.Int64},
		{Name: "score", Type: raw.Int64},
		{Name: "weight", Type: raw.Float64},
	})
	if err != nil {
		log.Fatal(err)
	}

	res, err := eng.Query("SELECT MAX(score), COUNT(*), AVG(weight) FROM scores WHERE score >= 75")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("max score: %d\n", res.Int64(0, 0))
	fmt.Printf("rows >= 75: %d\n", res.Int64(0, 1))
	fmt.Printf("avg weight: %.3f\n", res.Float64(0, 2))

	// The engine generated a file- and query-specific access path for this
	// query; Stats shows which.
	fmt.Printf("access paths: %v\n", res.Stats.AccessPaths)

	// A second query reuses what the first one cached (columns read, file
	// structure): see the shred:scan access path.
	res2, err := eng.Query("SELECT MIN(score) FROM scores WHERE score >= 75")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("min score: %d (served via %v)\n", res2.Int64(0, 0), res2.Stats.AccessPaths)
}
