// Partitioned: a log-analytics walkthrough of the dataset layer. Raw log
// exports land as one file per day — some days CSV, some days JSONL — and
// the whole directory is registered once as a single logical table. Queries
// span every file; a file that arrives later is picked up by the next query
// without re-registration; and once a selective query has warmed the
// per-partition zone maps, day files whose key range cannot match are pruned
// before they are even opened.
//
//	go run ./examples/partitioned
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strings"
)
import "rawdb"

// writeDay renders one day's events — (ts, service, latency_us) rows with
// ts strictly increasing across days — as CSV or JSONL.
func writeDay(dir string, day int, asJSON bool) error {
	const rowsPerDay = 2000
	var b strings.Builder
	for i := 0; i < rowsPerDay; i++ {
		ts := int64(day)*86_400 + int64(i*40)   // seconds, strictly ascending
		service := int64((i*7 + day) % 5)       // five services
		lat := int64(100 + (i*37+day*13)%9_900) // 0.1ms .. 10ms
		if asJSON {
			fmt.Fprintf(&b, "{\"ts\":%d,\"service\":%d,\"latency_us\":%d}\n", ts, service, lat)
		} else {
			fmt.Fprintf(&b, "%d,%d,%d\n", ts, service, lat)
		}
	}
	name := fmt.Sprintf("day-%02d.csv", day)
	if asJSON {
		name = fmt.Sprintf("day-%02d.jsonl", day)
	}
	return os.WriteFile(filepath.Join(dir, name), []byte(b.String()), 0o644)
}

func main() {
	dir, err := os.MkdirTemp("", "rawdb-logs-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	// Seven days of logs: days 0-3 were exported as CSV, 4-6 as JSONL.
	for day := 0; day < 7; day++ {
		if err := writeDay(dir, day, day >= 4); err != nil {
			log.Fatal(err)
		}
	}

	// One registration covers the directory; the schema names the columns
	// both formats carry (CSV positionally, JSONL by member name).
	eng := raw.NewEngine(raw.Config{})
	schema := []raw.Column{
		{Name: "ts", Type: raw.Int64},
		{Name: "service", Type: raw.Int64},
		{Name: "latency_us", Type: raw.Int64},
	}
	if err := eng.RegisterDataset("logs", dir, schema); err != nil {
		log.Fatal(err)
	}

	// Per-service latency over one day. ts ascends across days, so each
	// partition covers a disjoint ts range; this first, cold selective query
	// scans every file and builds each partition's zone maps as a side
	// effect of the sequential pass.
	day3 := "SELECT service, COUNT(*), SUM(latency_us) FROM logs" +
		" WHERE ts >= 259200 AND ts < 345600 GROUP BY service"
	res, err := eng.Query(day3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("day 3 cold:    %d services (%d files scanned)\n",
		res.NumRows(), res.Stats.PartitionsScanned)

	// The repeat consults the zone maps: day files whose ts range cannot
	// match are pruned before they are opened.
	res, err = eng.Query(day3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("day 3 repeat:  %d services, %d of 7 day files pruned before opening\n",
		res.NumRows(), res.Stats.PartitionsSkipped)

	res, err = eng.Query("SELECT COUNT(*), MAX(latency_us) FROM logs")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("all days:      %d rows, max latency %dus (%d files scanned)\n",
		res.Int64(0, 0), res.Int64(0, 1), res.Stats.PartitionsScanned)

	// A new day arrives while the engine is running: the next query's
	// refresh discovers it — no re-registration, no restart.
	if err := writeDay(dir, 7, true); err != nil {
		log.Fatal(err)
	}
	res, err = eng.Query("SELECT COUNT(*) FROM logs")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("day 7 arrives: %d rows across %d files\n",
		res.Int64(0, 0), res.Stats.PartitionsScanned)
}
