// Shreds: demonstrates the paper's two core techniques on a selective query.
//
// The same warm second query (MAX of an untouched column, filtered on a
// cached one) runs under three strategies: the generic in-situ scan, JIT
// access paths with full columns, and JIT with column shreds — showing the
// in-situ → JIT speedup (simpler generated code path) and the JIT → shreds
// speedup (only surviving rows are converted and materialised).
//
//	go run ./examples/shreds
package main

import (
	"fmt"
	"log"
	"time"

	"rawdb"
	"rawdb/internal/workload"
)

func main() {
	const rows = 200_000
	ds, err := workload.Narrow(rows, 7)
	if err != nil {
		log.Fatal(err)
	}
	schema := make([]raw.Column, len(ds.Schema))
	for i, c := range ds.Schema {
		schema[i] = raw.Column{Name: c.Name, Type: c.Type}
	}

	// 5% of rows survive the filter: the shreds strategy should convert
	// ~5% of col11 instead of all of it.
	x := workload.Threshold(0.05)
	q1 := fmt.Sprintf("SELECT MAX(col1) FROM t WHERE col1 < %d", x)
	q2 := fmt.Sprintf("SELECT MAX(col11) FROM t WHERE col1 < %d", x)

	for _, strat := range []raw.Strategy{raw.StrategyInSitu, raw.StrategyJIT, raw.StrategyShreds} {
		eng := raw.NewEngine(raw.Config{Strategy: strat, DisableShredCache: strat != raw.StrategyShreds})
		if err := eng.RegisterCSVData("t", ds.CSV, schema); err != nil {
			log.Fatal(err)
		}
		// Q1 builds the positional map (and caches col1 under shreds).
		if _, err := eng.Query(q1); err != nil {
			log.Fatal(err)
		}
		start := time.Now()
		res, err := eng.Query(q2)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-8s Q2 = %d  in %8v  paths=%v\n",
			res.Stats.Strategy, res.Int64(0, 0), time.Since(start).Round(time.Microsecond),
			res.Stats.AccessPaths)
	}

	// The plan difference is visible without timing anything:
	eng := raw.NewEngine(raw.Config{Strategy: raw.StrategyShreds})
	if err := eng.RegisterCSVData("t", ds.CSV, schema); err != nil {
		log.Fatal(err)
	}
	if _, err := eng.Query(q1); err != nil {
		log.Fatal(err)
	}
	plan, err := eng.Explain(q2, raw.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\ncolumn-shred plan for Q2:")
	fmt.Print(plan)
}
