// Higgs: the paper's real-world use case (Section 6). An ATLAS-like dataset
// — a ROOT-like file of events owning muons/electrons/jets, plus a CSV of
// good runs — is analysed twice:
//
//   - by a hand-written, object-at-a-time program using the file library
//     directly (the physicists' C++ workflow), and
//   - declaratively on the engine, joining the scientific file with the CSV
//     transparently and staging aggregate results as memory tables.
//
// Both run cold and warm. Cold runs are comparable; warm, the engine's
// column-shred cache makes re-analysis orders of magnitude faster than the
// object-at-a-time loop, the paper's headline result (its Table 3).
//
//	go run ./examples/higgs
package main

import (
	"fmt"
	"log"
	"time"

	"rawdb"
	"rawdb/internal/higgs"
	"rawdb/internal/storage/rootfile"
)

func main() {
	const events = 50_000
	fmt.Printf("generating %d ATLAS-like events...\n", events)
	d, err := higgs.Generate(higgs.Params{Events: events, Runs: 100, Compress: true, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ground truth: %d Higgs candidates\n\n", d.Candidates)

	// Hand-written analysis through the file library.
	f, err := rootfile.Parse(d.RootImage)
	if err != nil {
		log.Fatal(err)
	}
	for _, run := range []string{"cold", "warm"} {
		start := time.Now()
		n, err := higgs.Handwritten(f, d.GoodRuns)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("hand-written %-5s %10v  candidates=%d\n", run, time.Since(start).Round(time.Microsecond), n)
	}

	// Declarative analysis on the engine, via the public API. The events
	// table declares only 2 of its branches and the jets tree is never
	// touched — RAW's partial schemas at work.
	eng := raw.NewEngine(raw.Config{Strategy: raw.StrategyShreds})
	lepton := []raw.Column{
		{Name: "eventID", Type: raw.Int64},
		{Name: "pt", Type: raw.Float64},
		{Name: "eta", Type: raw.Float64},
	}
	if err := eng.RegisterRootFile("events", f, "events", []raw.Column{
		{Name: "eventID", Type: raw.Int64},
		{Name: "runNumber", Type: raw.Int64},
	}); err != nil {
		log.Fatal(err)
	}
	for _, tree := range []string{"muons", "electrons"} {
		if err := eng.RegisterRootFile(tree, f, tree, lepton); err != nil {
			log.Fatal(err)
		}
	}
	if err := eng.RegisterCSVData("goodruns", d.GoodRuns,
		[]raw.Column{{Name: "run", Type: raw.Int64}}); err != nil {
		log.Fatal(err)
	}

	for _, run := range []string{"cold", "warm"} {
		start := time.Now()
		n, err := analyse(eng)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("RAW          %-5s %10v  candidates=%d\n", run, time.Since(start).Round(time.Microsecond), n)
	}
}

// analyse is the declarative Higgs selection: per-collection qualification
// with HAVING, staged through memory tables, joined with good-run events.
func analyse(eng *raw.Engine) (int64, error) {
	stage := func(name, query string, renames []string) error {
		res, err := eng.Query(query)
		if err != nil {
			return err
		}
		_ = eng.DropTable(name)
		return eng.RegisterResult(name, res, renames)
	}
	lepton := func(table string) string {
		return fmt.Sprintf(
			"SELECT eventID, COUNT(*) FROM %s WHERE pt > %v AND eta < %v AND eta > %v GROUP BY eventID HAVING COUNT(*) >= %d",
			table, higgs.PtCut, higgs.EtaCut, -higgs.EtaCut, higgs.MinLeptons)
	}
	if err := stage("mu_sel", lepton("muons"), []string{"eventID", "n"}); err != nil {
		return 0, err
	}
	if err := stage("el_sel", lepton("electrons"), []string{"eventID", "n"}); err != nil {
		return 0, err
	}
	if err := stage("ev_good",
		"SELECT e.eventID, e.runNumber FROM events e, goodruns g WHERE e.runNumber = g.run",
		[]string{"eventID", "runNumber"}); err != nil {
		return 0, err
	}
	if err := stage("cand",
		"SELECT m.eventID, COUNT(*) FROM mu_sel m, el_sel e WHERE m.eventID = e.eventID GROUP BY m.eventID",
		[]string{"eventID", "n"}); err != nil {
		return 0, err
	}
	defer func() {
		for _, t := range []string{"mu_sel", "el_sel", "ev_good", "cand"} {
			_ = eng.DropTable(t)
		}
	}()
	res, err := eng.Query("SELECT COUNT(*) FROM cand c, ev_good g WHERE c.eventID = g.eventID")
	if err != nil {
		return 0, err
	}
	return res.Int64(0, 0), nil
}
