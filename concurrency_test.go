// Concurrency stress suite: mixed queries from many goroutines against one
// engine while its caches (positional maps, structural indexes, column
// shreds) warm up, with and without morsel-parallel scans. Results must
// match a serially computed baseline on every iteration, and the shred pool
// must end in a coherent state — no lost columns, no duplicate shreds for
// one key. Run with -race (the CI race job does) to surface data races in
// catalog/shred/jsonidx under concurrent load.
package raw_test

import (
	"fmt"
	"sync"
	"testing"

	"rawdb"
	"rawdb/internal/shred"
	"rawdb/internal/workload"
)

// stressQueries is the mixed workload: aggregates, group-bys and a
// projection, across two touched columns plus a group key.
func stressQueries() []string {
	x := workload.Threshold(0.4)
	return []string{
		fmt.Sprintf("SELECT COUNT(*) FROM %%s WHERE col1 < %d", x),
		fmt.Sprintf("SELECT MIN(col2), MAX(col2) FROM %%s WHERE col1 >= %d", x/2),
		fmt.Sprintf("SELECT SUM(col3) FROM %%s WHERE col1 < %d", x),
		"SELECT col4, COUNT(*) FROM %s WHERE col1 >= 0 GROUP BY col4",
		fmt.Sprintf("SELECT col2 FROM %%s WHERE col1 < %d", workload.Threshold(0.01)),
	}
}

func TestConcurrentQueries(t *testing.T) {
	const goroutines = 8
	const iters = 6

	ds, err := workload.Narrow(2000, 45)
	if err != nil {
		t.Fatal(err)
	}
	schema := make([]raw.Column, len(ds.Schema))
	for i, c := range ds.Schema {
		schema[i] = raw.Column{Name: c.Name, Type: c.Type}
	}
	register := func(e *raw.Engine) {
		t.Helper()
		if err := e.RegisterCSVData("tcsv", ds.CSV, schema); err != nil {
			t.Fatal(err)
		}
		if err := e.RegisterJSONData("tjson", ds.JSONL, schema); err != nil {
			t.Fatal(err)
		}
		if err := e.RegisterBinaryData("tbin", ds.Bin, schema); err != nil {
			t.Fatal(err)
		}
	}
	tables := []string{"tcsv", "tjson", "tbin"}

	// Serial baseline: one engine, one goroutine, fully warmed answers.
	baseline := raw.NewEngine(raw.Config{})
	register(baseline)
	want := make(map[string]*raw.Result)
	var queries []string
	for _, tmpl := range stressQueries() {
		for _, tab := range tables {
			q := fmt.Sprintf(tmpl, tab)
			res, err := baseline.Query(q)
			if err != nil {
				t.Fatalf("baseline %q: %v", q, err)
			}
			want[q] = res
			queries = append(queries, q)
		}
	}

	for _, workers := range []int{1, 4} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			eng := raw.NewEngine(raw.Config{Parallelism: workers})
			register(eng)
			var wg sync.WaitGroup
			errs := make(chan error, goroutines)
			for g := 0; g < goroutines; g++ {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					for it := 0; it < iters; it++ {
						// Rotate the start so goroutines collide on tables
						// and interleave cold/warm access paths.
						for qi := range queries {
							q := queries[(qi+g*5+it)%len(queries)]
							got, err := eng.Query(q)
							if err != nil {
								errs <- fmt.Errorf("goroutine %d %q: %w", g, q, err)
								return
							}
							w := want[q]
							if got.NumRows() != w.NumRows() || len(got.Columns) != len(w.Columns) {
								errs <- fmt.Errorf("goroutine %d %q: shape %dx%d, want %dx%d",
									g, q, got.NumRows(), len(got.Columns), w.NumRows(), len(w.Columns))
								return
							}
							for r := 0; r < w.NumRows(); r++ {
								for c := range w.Columns {
									if got.Value(r, c) != w.Value(r, c) {
										errs <- fmt.Errorf("goroutine %d %q cell (%d,%d): %v, want %v",
											g, q, r, c, got.Value(r, c), w.Value(r, c))
										return
									}
								}
							}
						}
					}
				}(g)
			}
			wg.Wait()
			close(errs)
			for err := range errs {
				t.Fatal(err)
			}

			// Cache-coherence invariants after the storm: every cached key
			// holds exactly one shred (duplicates would mean double-counted
			// captures), and every full shred spans exactly the table's rows
			// (a short one would mean a lost morsel).
			pool := eng.Internal().ShredPool()
			keys := pool.Keys()
			if pool.Len() != len(keys) {
				t.Fatalf("pool holds %d shreds for %d keys (duplicate shreds per column)",
					pool.Len(), len(keys))
			}
			for _, k := range keys {
				s := pool.LookupFull(k)
				if s == nil {
					// Partial shreds can only arise from serial late scans;
					// they still must not coexist with other shreds (checked
					// by the Len == Keys invariant above).
					continue
				}
				if s.Len() != ds.Rows {
					t.Fatalf("full shred %v has %d rows, table has %d (lost morsel output)",
						k, s.Len(), ds.Rows)
				}
			}
		})
	}
}

// TestConcurrentDistinctTables runs parallel queries against disjoint tables
// concurrently — the path where per-table query locks do not serialise and
// engine-level state (catalog, template cache, shred pool) sees real
// concurrent access.
func TestConcurrentDistinctTables(t *testing.T) {
	const goroutines = 6
	ds, err := workload.Narrow(1500, 46)
	if err != nil {
		t.Fatal(err)
	}
	schema := make([]raw.Column, len(ds.Schema))
	for i, c := range ds.Schema {
		schema[i] = raw.Column{Name: c.Name, Type: c.Type}
	}
	eng := raw.NewEngine(raw.Config{Parallelism: 2})
	for g := 0; g < goroutines; g++ {
		if err := eng.RegisterCSVData(fmt.Sprintf("t%d", g), ds.CSV, schema); err != nil {
			t.Fatal(err)
		}
	}
	base := raw.NewEngine(raw.Config{})
	if err := base.RegisterCSVData("t", ds.CSV, schema); err != nil {
		t.Fatal(err)
	}
	x := workload.Threshold(0.3)
	wantRes, err := base.Query(fmt.Sprintf("SELECT COUNT(*), MAX(col2) FROM t WHERE col1 < %d", x))
	if err != nil {
		t.Fatal(err)
	}
	wantCount, wantMax := wantRes.Int64(0, 0), wantRes.Int64(0, 1)

	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			q := fmt.Sprintf("SELECT COUNT(*), MAX(col2) FROM t%d WHERE col1 < %d", g, x)
			for i := 0; i < 8; i++ {
				res, err := eng.Query(q)
				if err != nil {
					errs <- err
					return
				}
				if res.Int64(0, 0) != wantCount || res.Int64(0, 1) != wantMax {
					errs <- fmt.Errorf("t%d: got (%d,%d), want (%d,%d)",
						g, res.Int64(0, 0), res.Int64(0, 1), wantCount, wantMax)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	// One full shred per touched column per table, none lost.
	pool := eng.Internal().ShredPool()
	for g := 0; g < goroutines; g++ {
		for _, col := range []int{0, 1} {
			s := pool.LookupFull(shred.Key{Table: fmt.Sprintf("t%d", g), Col: col})
			if s == nil || s.Len() != ds.Rows {
				t.Fatalf("table t%d col %d: missing or short full shred", g, col)
			}
		}
	}
}
